// Tests for the training-protocol machinery added on top of the paper's
// Algorithm 2: scheduled sampling (teacher forcing), the convergence
// scheduling hook, best-checkpoint restore, and checkpointing of the
// significant-node index set.
#include <gtest/gtest.h>

#include "baselines/rnn_seq2seq.h"
#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/serialization.h"
#include "tensor/tensor_ops.h"

namespace sagdfn {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

core::SagdfnConfig TinyConfig(int64_t n = 10) {
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = 4;
  config.horizon = 3;
  config.convergence_iters = 5;
  return config;
}

struct Inputs {
  Tensor x;
  Tensor tod;
  Tensor teacher;
};

Inputs MakeInputs(const core::SagdfnConfig& config, int64_t batch) {
  utils::Rng rng(1);
  Inputs in;
  in.x = Tensor::Normal(
      Shape({batch, config.history, config.num_nodes, config.input_dim}),
      rng);
  in.tod = Tensor::Uniform(Shape({batch, config.horizon}), rng);
  in.teacher = Tensor::Normal(
      Shape({batch, config.horizon, config.num_nodes}), rng);
  return in;
}

TEST(TeacherForcingTest, ProbZeroMatchesNoTeacher) {
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel model(config);
  Inputs in = MakeInputs(config, 2);
  // Drive past the convergence iteration so the index set freezes and
  // consecutive forwards are comparable.
  for (int64_t iter = 0; iter <= config.convergence_iters; ++iter) {
    model.Forward(in.x, in.tod, iter);
  }
  Tensor without = model.Forward(in.x, in.tod, 10).value();
  Tensor with_p0 =
      model.Forward(in.x, in.tod, 11, &in.teacher, 0.0).value();
  EXPECT_TRUE(tensor::AllClose(without, with_p0));
}

TEST(TeacherForcingTest, ProbOneChangesDecoderTrajectory) {
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel model(config);
  model.SetTraining(true);
  Inputs in = MakeInputs(config, 2);
  for (int64_t iter = 0; iter <= config.convergence_iters; ++iter) {
    model.Forward(in.x, in.tod, iter);
  }
  Tensor free_running = model.Forward(in.x, in.tod, 10).value();
  Tensor forced =
      model.Forward(in.x, in.tod, 11, &in.teacher, 1.0).value();
  // Feeding truth into the decoder must change later-step predictions.
  Tensor free_h2 = tensor::Slice(free_running, 1, 1, 3);
  Tensor forced_h2 = tensor::Slice(forced, 1, 1, 3);
  EXPECT_FALSE(tensor::AllClose(free_h2, forced_h2));
  // But the first step is produced before any teacher value is consumed.
  EXPECT_TRUE(tensor::AllClose(tensor::Slice(free_running, 1, 0, 1),
                               tensor::Slice(forced, 1, 0, 1), 1e-4f,
                               1e-3f));
}

TEST(TeacherForcingTest, EvalModeIgnoresTeacher) {
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel model(config);
  Inputs in = MakeInputs(config, 1);
  model.Forward(in.x, in.tod, 0);  // fix the index set while training
  model.SetTraining(false);
  Tensor a = model.Forward(in.x, in.tod, 10).value();
  Tensor b = model.Forward(in.x, in.tod, 11, &in.teacher, 1.0).value();
  EXPECT_TRUE(tensor::AllClose(a, b));
}

TEST(TeacherForcingTest, RnnSeq2SeqSupportsIt) {
  baselines::RnnSeq2Seq model(baselines::RnnSeq2Seq::CellType::kLstm, 2, 6,
                              4, 3, 3);
  utils::Rng rng(2);
  Tensor x = Tensor::Normal(Shape({2, 4, 5, 2}), rng);
  Tensor tod = Tensor::Zeros(Shape({2, 3}));
  Tensor teacher = Tensor::Normal(Shape({2, 3, 5}), rng);
  model.SetTraining(true);
  Tensor free_running = model.Forward(x, tod, 0).value();
  Tensor forced = model.Forward(x, tod, 1, &teacher, 1.0).value();
  EXPECT_FALSE(tensor::AllClose(tensor::Slice(free_running, 1, 1, 3),
                                tensor::Slice(forced, 1, 1, 3)));
}

TEST(TrainingPlanTest, ConvergenceIterationCapped) {
  core::SagdfnConfig config = TinyConfig();
  config.convergence_iters = 1 << 20;
  core::SagdfnModel model(config);
  model.OnTrainingPlan(100);
  EXPECT_EQ(model.config().convergence_iters, 60);  // 60% of the plan
}

TEST(TrainingPlanTest, SmallerExplicitValueKept) {
  core::SagdfnConfig config = TinyConfig();
  config.convergence_iters = 7;
  core::SagdfnModel model(config);
  model.OnTrainingPlan(1000);
  EXPECT_EQ(model.config().convergence_iters, 7);
}

TEST(IndexStateTest, SurvivesCheckpointRoundTrip) {
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel original(config);
  Inputs in = MakeInputs(config, 1);
  // Drive past convergence so the index set freezes.
  original.SetTraining(true);
  for (int64_t iter = 0; iter < 8; ++iter) {
    original.Forward(in.x, in.tod, iter);
  }
  auto frozen_set = original.index_set();

  const std::string path = ::testing::TempDir() + "/index_state.ckpt";
  ASSERT_TRUE(nn::SaveModule(original, path).ok());

  core::SagdfnConfig other = config;
  other.seed = 999;
  core::SagdfnModel restored(other);
  ASSERT_TRUE(nn::LoadModule(&restored, path).ok());
  EXPECT_EQ(restored.index_set(), frozen_set);

  // Predictions agree exactly.
  restored.SetTraining(false);
  original.SetTraining(false);
  Tensor a = original.Forward(in.x, in.tod, 100).value();
  Tensor b = restored.Forward(in.x, in.tod, 100).value();
  EXPECT_TRUE(tensor::AllClose(a, b));
  std::remove(path.c_str());
}

TEST(IndexStateTest, UnsampledStateRestoresAsEmpty) {
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel fresh(config);  // never ran Forward
  const std::string path = ::testing::TempDir() + "/fresh.ckpt";
  ASSERT_TRUE(nn::SaveModule(fresh, path).ok());
  core::SagdfnModel restored(config);
  ASSERT_TRUE(nn::LoadModule(&restored, path).ok());
  EXPECT_TRUE(restored.index_set().empty());
  std::remove(path.c_str());
}

TEST(BestCheckpointTest, RestoreRecoversBestValidationWeights) {
  // Train with a huge LR in later epochs destroyed by construction:
  // use lr so large training diverges after improving, and verify the
  // restored model matches the best recorded validation MAE rather than
  // the (worse) final state.
  data::TrafficOptions options;
  options.num_nodes = 8;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 4;
  data::ForecastDataset dataset(data::GenerateTraffic(options),
                                data::WindowSpec{4, 3});
  core::SagdfnConfig config = TinyConfig(8);
  core::SagdfnModel model(config);
  core::TrainOptions train;
  train.epochs = 6;
  train.batch_size = 8;
  train.learning_rate = 0.3;  // deliberately unstable
  train.grad_clip = 100.0;
  train.max_train_batches_per_epoch = 6;
  train.max_eval_batches = 4;
  core::Trainer trainer(&model, &dataset, train);
  core::TrainResult result = trainer.Train();

  tensor::Tensor pred = trainer.Predict(data::Split::kValidation);
  tensor::Tensor truth = trainer.Truth(data::Split::kValidation);
  const double restored_mae = metrics::MaskedMae(pred, truth);
  // The post-restore validation MAE equals the best seen during training
  // (up to resampling noise none of which applies here).
  EXPECT_NEAR(restored_mae, result.best_val_mae,
              1e-6 + 0.05 * result.best_val_mae);
}

TEST(ColdStartInferenceTest, DeterministicIndexSet) {
  // A never-trained model evaluated twice must pick the same index set
  // (exploration-free draw) so inference is reproducible.
  core::SagdfnConfig config = TinyConfig();
  core::SagdfnModel model(config);
  model.SetTraining(false);
  Inputs in = MakeInputs(config, 1);
  Tensor a = model.Forward(in.x, in.tod, 0).value();
  auto set_a = model.index_set();
  Tensor b = model.Forward(in.x, in.tod, 1).value();
  EXPECT_EQ(model.index_set(), set_a);
  EXPECT_TRUE(tensor::AllClose(a, b));
}

}  // namespace
}  // namespace sagdfn
