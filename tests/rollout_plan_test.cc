// Determinism and lifecycle tests for the precompiled eval-mode rollout
// plan (core/rollout_plan), serving's default Predict path:
//
//   - replay is memcmp-identical to the eager autograd walk (the fused
//     row segments and MatMulRowsInto must preserve every per-row value
//     chain bit for bit), across batch sizes, layer counts and extra
//     input covariates;
//   - FrozenModel caches exactly one plan per batch size;
//   - warm replay never moves the arena high-water mark (zero per-step
//     heap allocation);
//   - concurrent replay from many threads stays byte-deterministic.
#include "core/rollout_plan.h"

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/arena.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

SagdfnConfig TinyConfig() {
  SagdfnConfig config;
  config.num_nodes = 9;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = 5;
  config.horizon = 4;
  config.seed = 33;
  return config;
}

std::shared_ptr<const serve::FrozenModel> MakeFrozen(
    const SagdfnConfig& config) {
  return std::shared_ptr<const serve::FrozenModel>(
      serve::FrozenModel::Freeze(std::make_unique<SagdfnModel>(config)));
}

struct Batch {
  Tensor x;
  Tensor tod;
};

Batch MakeBatch(const SagdfnConfig& config, int64_t batch, uint64_t seed) {
  utils::Rng rng(seed);
  Batch b;
  b.x = Tensor::Normal(
      Shape({batch, config.history, config.num_nodes, config.input_dim}),
      rng);
  b.tod =
      Tensor::Uniform(Shape({batch, config.horizon}), rng, 0.0f, 1.0f);
  return b;
}

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void ExpectReplayMatchesEager(const SagdfnConfig& config) {
  auto model = MakeFrozen(config);
  for (int64_t batch : {int64_t{1}, int64_t{3}, int64_t{8}}) {
    const Batch in = MakeBatch(config, batch, 100 + batch);
    const Tensor planned = model->Predict(in.x, in.tod);
    const Tensor eager = model->PredictEager(in.x, in.tod);
    EXPECT_TRUE(BytesEqual(planned, eager))
        << "plan replay diverges from eager at batch " << batch;
  }
}

TEST(RolloutPlanTest, ReplayMatchesEagerBytesAcrossBatches) {
  ExpectReplayMatchesEager(TinyConfig());
}

TEST(RolloutPlanTest, ReplayMatchesEagerWithTwoLayers) {
  SagdfnConfig config = TinyConfig();
  config.num_layers = 2;
  config.seed = 34;
  ExpectReplayMatchesEager(config);
}

TEST(RolloutPlanTest, ReplayMatchesEagerWithExtraCovariates) {
  // input_dim > 2: the decoder must carry the extra channels of the last
  // observation forward, exactly like the eager Concat does.
  SagdfnConfig config = TinyConfig();
  config.input_dim = 4;
  config.seed = 35;
  ExpectReplayMatchesEager(config);
}

TEST(RolloutPlanTest, IncrementalResumeMatchesEagerAccumulatedBytes) {
  // The streaming carry contract at the plan level: a kFull replay over
  // the first h frames exports the post-encoder state; chaining
  // kIncremental replays (one new frame each, state carried through)
  // must be BIT-identical to eagerly re-encoding the whole accumulated
  // frame sequence — same kernels, same per-row chains, the carried
  // state is a byte copy of the hidden slab.
  const SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const int64_t h = config.history;
  const int64_t extra = 3;
  const Batch in = MakeBatch(config, 1, 77);  // [1, h, N, C]
  utils::Rng rng(78);
  const Tensor stream = Tensor::Normal(
      Shape({1, extra, config.num_nodes, config.input_dim}), rng);

  auto full = model->PlanFor(1, PlanKind::kFull);
  auto inc = model->PlanFor(1, PlanKind::kIncremental);
  EXPECT_EQ(inc->encoded_steps(), 1);
  EXPECT_EQ(full->encoded_steps(), h);
  EXPECT_EQ(inc->state_floats(), full->state_floats());

  Tensor state{Shape({full->state_floats()})};
  const Tensor warm = full->Run(in.x, in.tod, nullptr, &state);
  EXPECT_TRUE(BytesEqual(warm, model->PredictEager(in.x, in.tod)))
      << "kFull with state export diverged from eager";

  const int64_t frame_floats = config.num_nodes * config.input_dim;
  for (int64_t k = 0; k < extra; ++k) {
    Tensor frame{Shape({1, 1, config.num_nodes, config.input_dim})};
    std::memcpy(frame.data(), stream.data() + k * frame_floats,
                sizeof(float) * frame_floats);
    // h_in and h_out alias: every state row is read before rewritten.
    const Tensor tick = inc->Run(frame, in.tod, &state, &state);

    // Eager reference: re-encode ALL h + k + 1 frames from zero init.
    Tensor acc{Shape({1, h + k + 1, config.num_nodes, config.input_dim})};
    std::memcpy(acc.data(), in.x.data(), sizeof(float) * h * frame_floats);
    std::memcpy(acc.data() + h * frame_floats, stream.data(),
                sizeof(float) * (k + 1) * frame_floats);
    const Tensor eager = model->PredictEager(acc, in.tod);
    EXPECT_TRUE(BytesEqual(tick, eager))
        << "incremental tick " << k << " diverged from accumulated eager";
  }
}

TEST(RolloutPlanTest, IncrementalPlanRequiresStateIn) {
  auto model = MakeFrozen(TinyConfig());
  auto inc = model->PlanFor(1, PlanKind::kIncremental);
  const SagdfnConfig config = TinyConfig();
  Tensor frame{Shape({1, 1, config.num_nodes, config.input_dim})};
  Tensor tod{Shape({1, config.horizon})};
  EXPECT_DEATH(inc->Run(frame, tod, nullptr, nullptr), "");
}

TEST(RolloutPlanTest, PlanCacheKeyedByKind) {
  auto model = MakeFrozen(TinyConfig());
  auto full = model->PlanFor(2, PlanKind::kFull);
  auto inc = model->PlanFor(2, PlanKind::kIncremental);
  EXPECT_NE(full.get(), inc.get());
  EXPECT_EQ(full->kind(), PlanKind::kFull);
  EXPECT_EQ(inc->kind(), PlanKind::kIncremental);
  EXPECT_EQ(model->PlanFor(2, PlanKind::kFull).get(), full.get());
  EXPECT_EQ(model->PlanFor(2, PlanKind::kIncremental).get(), inc.get());
  EXPECT_EQ(model->plan_cache_size(), 2);
}

TEST(RolloutPlanTest, PlanCacheEvictsLeastRecentlyUsed) {
  auto model = std::shared_ptr<const serve::FrozenModel>(
      serve::FrozenModel::Freeze(std::make_unique<SagdfnModel>(TinyConfig()),
                                 /*plan_cache_capacity=*/2));
  EXPECT_EQ(model->plan_cache_capacity(), 2);
  auto p1 = model->PlanFor(1);
  auto p2 = model->PlanFor(2);
  EXPECT_EQ(model->plan_cache_size(), 2);
  EXPECT_EQ(model->plan_cache_evictions(), 0);

  // Touch batch 1 so batch 2 is the LRU entry, then insert batch 3.
  EXPECT_EQ(model->PlanFor(1).get(), p1.get());
  auto p3 = model->PlanFor(3);
  EXPECT_EQ(model->plan_cache_size(), 2);
  EXPECT_EQ(model->plan_cache_evictions(), 1);

  // Batch 1 and 3 survived; batch 2 was evicted and rebuilds fresh.
  EXPECT_EQ(model->PlanFor(1).get(), p1.get());
  EXPECT_EQ(model->plan_cache_evictions(), 1);
  EXPECT_NE(model->PlanFor(2).get(), p2.get());
  EXPECT_EQ(model->plan_cache_evictions(), 2);

  // The evicted plan stays replayable through the caller's shared_ptr.
  const SagdfnConfig config = TinyConfig();
  const Batch in = MakeBatch(config, 2, 99);
  EXPECT_TRUE(BytesEqual(p2->Run(in.x, in.tod),
                         model->PredictEager(in.x, in.tod)));
}

TEST(RolloutPlanTest, PlanIsCachedPerBatchSize) {
  auto model = MakeFrozen(TinyConfig());
  auto p1 = model->PlanFor(3);
  auto p1_again = model->PlanFor(3);
  auto p8 = model->PlanFor(8);
  EXPECT_EQ(p1.get(), p1_again.get());
  EXPECT_NE(p1.get(), p8.get());
  EXPECT_EQ(p1->batch(), 3);
  EXPECT_EQ(p8->batch(), 8);
  EXPECT_GT(p1->num_instructions(), 0);
  EXPECT_GT(p1->scratch_bytes(), 0);
  EXPECT_FALSE(p1->DebugString().empty());
}

TEST(RolloutPlanTest, WarmReplayDoesNotMoveArenaHighWater) {
  const SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const Batch in = MakeBatch(config, 4, 7);
  // Warm: plan construction (dry run) plus one replay on this thread.
  model->Predict(in.x, in.tod);
  const int64_t before = utils::ScratchArena::ProcessHighWater();
  for (int tick = 0; tick < 8; ++tick) model->Predict(in.x, in.tod);
  EXPECT_EQ(before, utils::ScratchArena::ProcessHighWater())
      << "replay allocated past the warmed arena high-water mark";
}

TEST(RolloutPlanTest, ConcurrentReplayIsByteDeterministic) {
  const SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const Batch in = MakeBatch(config, 2, 13);
  const Tensor reference = model->PredictEager(in.x, in.tod);
  model->PlanFor(2);
  constexpr int kThreads = 8;
  std::vector<Tensor> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = model->Predict(in.x, in.tod); });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(BytesEqual(results[i], reference)) << "thread " << i;
  }
}

}  // namespace
}  // namespace sagdfn::core
