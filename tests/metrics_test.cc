#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace sagdfn::metrics {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(MetricsTest, PerfectPredictionIsZero) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4}, Shape({4}));
  Scores s = Evaluate(t, t);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_DOUBLE_EQ(s.mape, 0.0);
}

TEST(MetricsTest, KnownValues) {
  Tensor pred = Tensor::FromVector({2, 2}, Shape({2}));
  Tensor truth = Tensor::FromVector({1, 4}, Shape({2}));
  EXPECT_DOUBLE_EQ(MaskedMae(pred, truth), 1.5);           // (1 + 2) / 2
  EXPECT_NEAR(MaskedRmse(pred, truth), std::sqrt(2.5), 1e-9);
  EXPECT_NEAR(MaskedMape(pred, truth), (1.0 + 0.5) / 2, 1e-9);
}

TEST(MetricsTest, ZeroTruthMasked) {
  // Second entry has truth 0 -> excluded entirely.
  Tensor pred = Tensor::FromVector({2, 100}, Shape({2}));
  Tensor truth = Tensor::FromVector({1, 0}, Shape({2}));
  EXPECT_DOUBLE_EQ(MaskedMae(pred, truth), 1.0);
  EXPECT_DOUBLE_EQ(MaskedMape(pred, truth), 1.0);
}

TEST(MetricsTest, AllMaskedReturnsNan) {
  // Every truth is 0 (missing reading) -> there is nothing to score, and
  // reporting 0.0 would claim a perfect forecast. The contract is NaN.
  Tensor pred = Tensor::FromVector({5, 5}, Shape({2}));
  Tensor truth = Tensor::Zeros(Shape({2}));
  Scores s = Evaluate(pred, truth);
  EXPECT_TRUE(std::isnan(s.mae));
  EXPECT_TRUE(std::isnan(s.rmse));
  EXPECT_TRUE(std::isnan(s.mape));
  EXPECT_FALSE(s.IsSignal());
  EXPECT_TRUE(std::isnan(MaskedMae(pred, truth)));
  EXPECT_TRUE(std::isnan(MaskedRmse(pred, truth)));
  EXPECT_TRUE(std::isnan(MaskedMape(pred, truth)));
}

TEST(MetricsTest, IsSignalWithAnyUnmaskedEntry) {
  Tensor pred = Tensor::FromVector({5, 5}, Shape({2}));
  Tensor truth = Tensor::FromVector({0, 4}, Shape({2}));
  Scores s = Evaluate(pred, truth);
  EXPECT_TRUE(s.IsSignal());
  EXPECT_DOUBLE_EQ(s.mae, 1.0);
}

TEST(MetricsTest, TinyTruthExcludedFromMapeOnly) {
  // |truth| = 1e-6 is unmasked (counts for MAE/RMSE) but below
  // kMapeTruthFloor, so MAPE ignores it instead of reporting a
  // million-percent error.
  Tensor pred = Tensor::FromVector({1e-6f, 11}, Shape({2}));
  Tensor truth = Tensor::FromVector({2e-6f, 10}, Shape({2}));
  Scores s = Evaluate(pred, truth);
  EXPECT_NEAR(s.mae, (1e-6 + 1.0) / 2, 1e-7);
  EXPECT_NEAR(s.mape, 0.1, 1e-6);  // only the truth=10 entry
  EXPECT_LT(s.mape, 1.0);          // regression: no 50%-error blowup
}

TEST(MetricsTest, AllTinyTruthsGiveNanMapeButFiniteMae) {
  Tensor pred = Tensor::FromVector({1e-5f, 2e-5f}, Shape({2}));
  Tensor truth = Tensor::FromVector({1e-6f, 1e-6f}, Shape({2}));
  Scores s = Evaluate(pred, truth);
  EXPECT_TRUE(s.IsSignal());
  EXPECT_TRUE(std::isfinite(s.mae));
  EXPECT_TRUE(std::isnan(s.mape));
}

TEST(MetricsTest, RmseAtLeastMae) {
  utils::Rng rng(1);
  Tensor pred = Tensor::Uniform(Shape({100}), rng, 1.0f, 2.0f);
  Tensor truth = Tensor::Uniform(Shape({100}), rng, 1.0f, 2.0f);
  EXPECT_GE(MaskedRmse(pred, truth), MaskedMae(pred, truth));
}

TEST(MetricsTest, HorizonSlicing) {
  // [S=1, f=3, N=2]; horizon h picks row h-1.
  Tensor pred = Tensor::FromVector({1, 1, 2, 2, 3, 3}, Shape({1, 3, 2}));
  Tensor truth = Tensor::FromVector({1, 1, 1, 1, 1, 1}, Shape({1, 3, 2}));
  auto scores = EvaluateHorizons(pred, truth, {1, 2, 3});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0].mae, 0.0);
  EXPECT_DOUBLE_EQ(scores[1].mae, 1.0);
  EXPECT_DOUBLE_EQ(scores[2].mae, 2.0);
}

TEST(MetricsTest, ScoresToString) {
  Scores s;
  s.mae = 2.561;
  s.rmse = 5.004;
  s.mape = 0.0653;
  EXPECT_EQ(s.ToString(), "2.56 5.00 6.5%");
}

// Property: scaling errors scales MAE/RMSE linearly; MAPE is
// scale-invariant under joint scaling of pred and truth.
class MetricScaleProperty : public ::testing::TestWithParam<float> {};

TEST_P(MetricScaleProperty, Scaling) {
  utils::Rng rng(2);
  Tensor truth = Tensor::Uniform(Shape({50}), rng, 5.0f, 10.0f);
  Tensor noise = Tensor::Uniform(Shape({50}), rng, -1.0f, 1.0f);
  Tensor pred = tensor::Add(truth, noise);
  const float k = GetParam();
  Tensor pred_k = tensor::MulScalar(pred, k);
  Tensor truth_k = tensor::MulScalar(truth, k);
  EXPECT_NEAR(MaskedMae(pred_k, truth_k), k * MaskedMae(pred, truth),
              1e-3);
  EXPECT_NEAR(MaskedMape(pred_k, truth_k), MaskedMape(pred, truth), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Factors, MetricScaleProperty,
                         ::testing::Values(2.0f, 5.0f, 10.0f));

// The parallel accumulation must be bit-identical across thread counts
// (fixed-size blocks combined in block order — the repo-wide determinism
// invariant). Uses > kReduceBlock elements so multiple blocks exist.
TEST(MetricsTest, ParallelAccumulationIsThreadCountInvariant) {
  utils::Rng rng(3);
  const int64_t n = utils::kReduceBlock * 3 + 1234;
  Tensor pred = Tensor::Uniform(Shape({n}), rng, 0.0f, 100.0f);
  Tensor truth = Tensor::Uniform(Shape({n}), rng, 0.0f, 100.0f);
  // Sprinkle masked and sub-floor truths across blocks.
  float* pt = truth.data();
  for (int64_t i = 0; i < n; i += 97) pt[i] = 0.0f;
  for (int64_t i = 1; i < n; i += 131) pt[i] = 1e-5f;

  const int64_t previous = utils::GetNumThreads();
  utils::SetNumThreads(1);
  Scores serial = Evaluate(pred, truth);
  utils::SetNumThreads(3);
  Scores threaded = Evaluate(pred, truth);
  utils::SetNumThreads(previous);

  EXPECT_EQ(serial.mae, threaded.mae);
  EXPECT_EQ(serial.rmse, threaded.rmse);
  EXPECT_EQ(serial.mape, threaded.mape);
}

}  // namespace
}  // namespace sagdfn::metrics
