#include <cmath>
#include <gtest/gtest.h>

#include "baselines/classical.h"
#include "baselines/dense_stgnn.h"
#include "baselines/linalg.h"
#include "baselines/registry.h"
#include "baselines/rnn_seq2seq.h"
#include "baselines/temporal_only.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::baselines {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::ForecastDataset TinyDataset(uint64_t seed = 3) {
  data::TrafficOptions options;
  options.num_nodes = 10;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = seed;
  return data::ForecastDataset(data::GenerateTraffic(options),
                               data::WindowSpec{6, 3});
}

FitOptions QuickFit() {
  FitOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_train_batches_per_epoch = 5;
  options.max_eval_batches = 3;
  return options;
}

TEST(LinalgTest, RidgeSolveKnownSystem) {
  // gram = [[2, 0], [0, 2]], rhs = [[2], [4]] with lambda=0-ish.
  std::vector<double> gram = {2, 0, 0, 2};
  std::vector<double> rhs = {2, 4};
  auto w = RidgeSolve(gram, 2, rhs, 1, 1e-9);
  EXPECT_NEAR(w[0], 1.0, 1e-6);
  EXPECT_NEAR(w[1], 2.0, 1e-6);
}

TEST(LinalgTest, RidgeSolveMultipleRhs) {
  std::vector<double> gram = {4, 1, 1, 3};
  std::vector<double> rhs = {1, 2, 0, 1};  // [2 x 2]
  auto w = RidgeSolve(gram, 2, rhs, 2, 1e-9);
  // Verify gram @ w = rhs.
  EXPECT_NEAR(4 * w[0] + 1 * w[2], 1.0, 1e-6);
  EXPECT_NEAR(4 * w[1] + 1 * w[3], 2.0, 1e-6);
  EXPECT_NEAR(1 * w[0] + 3 * w[2], 0.0, 1e-6);
  EXPECT_NEAR(1 * w[1] + 3 * w[3], 1.0, 1e-6);
}

TEST(LinalgTest, RidgeRegularizesSingularGram) {
  std::vector<double> gram = {1, 1, 1, 1};  // rank 1
  std::vector<double> rhs = {1, 1};
  auto w = RidgeSolve(gram, 2, rhs, 1, 0.5);
  EXPECT_FALSE(std::isnan(w[0]));
  EXPECT_NEAR(w[0], w[1], 1e-9);
}

TEST(HistoricalAverageTest, PredictsDailyPattern) {
  data::ForecastDataset dataset = TinyDataset();
  HistoricalAverage model;
  model.Fit(dataset, QuickFit());
  Tensor pred = model.Predict(dataset, data::Split::kTest, 10);
  Tensor truth = CollectTruth(dataset, data::Split::kTest, 10);
  EXPECT_EQ(pred.shape(), truth.shape());
  // Far better than predicting a constant 0.
  EXPECT_LT(metrics::MaskedMae(pred, truth), 30.0);
}

TEST(ArForecasterTest, NailsSyntheticArProcess) {
  // Build a dataset from a pure AR(1) process; the AR baseline should be
  // very accurate at horizon 1.
  utils::Rng rng(5);
  const int64_t t_steps = 600;
  const int64_t n = 3;
  Tensor values = Tensor::Zeros(Shape({t_steps, n}));
  std::vector<double> state(n, 0.0);
  for (int64_t t = 0; t < t_steps; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      state[i] = 0.95 * state[i] + 0.1 * rng.Normal();
      values.At({t, i}) = static_cast<float>(10.0 + state[i]);
    }
  }
  data::TimeSeries series{"ar", values, 24};
  data::ForecastDataset dataset(series, data::WindowSpec{8, 4});
  ArForecaster model(4);
  model.Fit(dataset, QuickFit());
  Tensor pred = model.Predict(dataset, data::Split::kTest, 20);
  Tensor truth = CollectTruth(dataset, data::Split::kTest, 20);
  auto scores = metrics::EvaluateHorizons(pred, truth, {1});
  EXPECT_LT(scores[0].mae, 0.15);
  EXPECT_GT(model.ParameterCount(), 0);
}

TEST(VarForecasterTest, CapturesCrossNodeDependence) {
  // Node 1 follows node 0 with one step of lag; VAR must exploit it,
  // per-node AR cannot.
  utils::Rng rng(6);
  const int64_t t_steps = 600;
  Tensor values = Tensor::Zeros(Shape({t_steps, 2}));
  double driver = 0.0;
  double prev_driver = 0.0;
  for (int64_t t = 0; t < t_steps; ++t) {
    const double next = 0.9 * driver + rng.Normal();
    values.At({t, 0}) = static_cast<float>(10 + next);
    values.At({t, 1}) = static_cast<float>(10 + prev_driver);
    prev_driver = driver = next;
  }
  data::TimeSeries series{"var", values, 24};
  data::ForecastDataset dataset(series, data::WindowSpec{6, 2});

  VarForecaster var(2);
  var.Fit(dataset, QuickFit());
  Tensor var_pred = var.Predict(dataset, data::Split::kTest, 30);

  ArForecaster ar(2);
  ar.Fit(dataset, QuickFit());
  Tensor ar_pred = ar.Predict(dataset, data::Split::kTest, 30);

  Tensor truth = CollectTruth(dataset, data::Split::kTest, 30);
  // Node 1 at horizon 1 is exactly predictable from node 0's last value.
  Tensor var_n1 = tensor::Slice(tensor::Slice(var_pred, 1, 0, 1), 2, 1, 2);
  Tensor ar_n1 = tensor::Slice(tensor::Slice(ar_pred, 1, 0, 1), 2, 1, 2);
  Tensor truth_n1 = tensor::Slice(tensor::Slice(truth, 1, 0, 1), 2, 1, 2);
  EXPECT_LT(metrics::MaskedMae(var_n1, truth_n1),
            0.5 * metrics::MaskedMae(ar_n1, truth_n1));
}

TEST(SvrForecasterTest, BeatsZeroPredictor) {
  data::ForecastDataset dataset = TinyDataset();
  SvrForecaster model;
  FitOptions options = QuickFit();
  options.epochs = 4;
  model.Fit(dataset, options);
  Tensor pred = model.Predict(dataset, data::Split::kTest, 15);
  Tensor truth = CollectTruth(dataset, data::Split::kTest, 15);
  Tensor zeros = Tensor::Zeros(truth.shape());
  EXPECT_LT(metrics::MaskedMae(pred, truth),
            metrics::MaskedMae(zeros, truth));
}

TEST(RnnSeq2SeqTest, ForwardShape) {
  RnnSeq2Seq model(RnnSeq2Seq::CellType::kLstm, 2, 8, 6, 3, 7);
  utils::Rng rng(8);
  Tensor x = Tensor::Normal(Shape({2, 6, 5, 2}), rng);
  Tensor tod = Tensor::Zeros(Shape({2, 3}));
  auto pred = model.Forward(x, tod, 0);
  EXPECT_EQ(pred.shape(), Shape({2, 3, 5}));
  EXPECT_EQ(model.name(), "LSTM");
}

TEST(DenseStgnnTest, AllGraphSourcesForward) {
  utils::Rng rng(9);
  Tensor predefined = Tensor::Uniform(Shape({8, 8}), rng);
  for (auto source :
       {GraphSource::kPredefined, GraphSource::kAdaptive,
        GraphSource::kBoth, GraphSource::kPairwiseFfn,
        GraphSource::kAttention}) {
    DenseStgnnConfig config;
    config.num_nodes = 8;
    config.history = 4;
    config.horizon = 3;
    config.hidden_dim = 6;
    config.embedding_dim = 4;
    config.source = source;
    DenseStgnn model(config, predefined);
    Tensor x = Tensor::Normal(Shape({2, 4, 8, 2}), rng);
    Tensor tod = Tensor::Zeros(Shape({2, 3}));
    auto pred = model.Forward(x, tod, 0);
    EXPECT_EQ(pred.shape(), Shape({2, 3, 8}))
        << "source " << static_cast<int>(source);
    EXPECT_FALSE(tensor::HasNonFinite(pred.value()));
  }
}

TEST(DenseStgnnTest, AdjacencyRowsNormalized) {
  DenseStgnnConfig config;
  config.num_nodes = 6;
  config.source = GraphSource::kAdaptive;
  config.embedding_dim = 4;
  DenseStgnn model(config);
  Tensor a = model.ComputeAdjacency();
  Tensor sums = tensor::Sum(a, 1);
  for (int64_t i = 0; i < 6; ++i) EXPECT_NEAR(sums[i], 1.0f, 1e-4f);
}

TEST(DenseStgnnTest, PredefinedRequiresAdjacency) {
  DenseStgnnConfig config;
  config.num_nodes = 6;
  config.source = GraphSource::kPredefined;
  EXPECT_DEATH(DenseStgnn model(config), "predefined");
}

TEST(TemporalOnlyTest, AllKindsForward) {
  utils::Rng rng(10);
  for (auto kind :
       {TemporalOnlyModel::Kind::kTimesNet,
        TemporalOnlyModel::Kind::kFedformer,
        TemporalOnlyModel::Kind::kEtsformer}) {
    TemporalOnlyModel model(kind, 8, 4, 16, 4, 11);
    Tensor x = Tensor::Normal(Shape({2, 8, 5, 2}), rng);
    Tensor tod = Tensor::Zeros(Shape({2, 4}));
    auto pred = model.Forward(x, tod, 0);
    EXPECT_EQ(pred.shape(), Shape({2, 4, 5})) << model.name();
    EXPECT_FALSE(tensor::HasNonFinite(pred.value()));
  }
}

TEST(RegistryTest, AllPaperBaselinesConstructible) {
  ModelSizing sizing;
  for (const auto& name : PaperBaselineNames()) {
    auto model = MakeForecaster(name, sizing);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
  for (const auto& name : NonGnnBaselineNames()) {
    auto model = MakeForecaster(name, sizing);
    ASSERT_NE(model, nullptr) << name;
  }
  EXPECT_NE(MakeForecaster("SAGDFN", sizing), nullptr);
  EXPECT_NE(MakeForecaster("HistoricalAverage", sizing), nullptr);
}

TEST(RegistryTest, FamiliesCoverStgnnBaselines) {
  EXPECT_TRUE(HasFamily("DCRNN"));
  EXPECT_TRUE(HasFamily("SAGDFN"));
  EXPECT_FALSE(HasFamily("ARIMA"));
  EXPECT_FALSE(HasFamily("LSTM"));
  EXPECT_EQ(FamilyOf("GTS"), core::ModelFamily::kGts);
  EXPECT_EQ(FamilyOf("SAGDFN"), core::ModelFamily::kSagdfn);
}

TEST(RegistryTest, NeuralBaselineEndToEnd) {
  data::ForecastDataset dataset = TinyDataset();
  ModelSizing sizing;
  sizing.hidden = 8;
  sizing.embedding = 4;
  auto model = MakeForecaster("AGCRN", sizing);
  model->Fit(dataset, QuickFit());
  Tensor pred = model->Predict(dataset, data::Split::kTest, 0);
  EXPECT_EQ(pred.dim(1), 3);
  EXPECT_EQ(pred.dim(2), 10);
  EXPECT_GT(model->ParameterCount(), 0);
  EXPECT_GT(model->LastFitSeconds(), 0.0);
}

TEST(RegistryTest, SagdfnVariantTweakApplies) {
  data::ForecastDataset dataset = TinyDataset();
  ModelSizing sizing;
  sizing.sagdfn_m = 6;
  sizing.sagdfn_k = 4;
  auto model = MakeSagdfnForecaster(
      "SAGDFN w/o Entmax", sizing,
      [](core::SagdfnConfig* config) { config->use_entmax = false; });
  EXPECT_EQ(model->name(), "SAGDFN w/o Entmax");
  model->Fit(dataset, QuickFit());
  Tensor pred = model->Predict(dataset, data::Split::kTest, 0);
  EXPECT_FALSE(tensor::HasNonFinite(pred));
}

TEST(RegistryTest, UnknownNameDies) {
  ModelSizing sizing;
  EXPECT_DEATH(MakeForecaster("NoSuchModel", sizing), "unknown");
}

}  // namespace
}  // namespace sagdfn::baselines
