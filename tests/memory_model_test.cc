#include "core/memory_model.h"

#include <gtest/gtest.h>

namespace sagdfn::core {
namespace {

constexpr double kGiB = 1ull << 30;

MemoryParams PaperParams(int64_t n) {
  MemoryParams p;
  p.num_nodes = n;
  p.batch = 32;
  p.window = 24;
  p.hidden = 64;
  p.embedding = 100;
  p.m = 100;
  p.heads = 8;
  return p;
}

TEST(MemoryModelTest, FamilyNamesUnique) {
  auto families = AllFamilies();
  EXPECT_EQ(families.size(), 12u);
  std::set<std::string> names;
  for (auto f : families) names.insert(FamilyName(f));
  EXPECT_EQ(names.size(), 12u);
}

TEST(MemoryModelTest, SagdfnScalesLinearlyInN) {
  MemoryEstimate small =
      EstimateTrainingMemory(ModelFamily::kSagdfn, PaperParams(1000));
  MemoryEstimate large =
      EstimateTrainingMemory(ModelFamily::kSagdfn, PaperParams(2000));
  // Doubling N should roughly double (not quadruple) the graph bytes.
  EXPECT_NEAR(large.graph_bytes / small.graph_bytes, 2.0, 0.2);
}

TEST(MemoryModelTest, DenseFamiliesScaleQuadratically) {
  for (auto family : {ModelFamily::kAgcrn, ModelFamily::kGts,
                      ModelFamily::kGman, ModelFamily::kStsgcn}) {
    MemoryEstimate small =
        EstimateTrainingMemory(family, PaperParams(1000));
    MemoryEstimate large =
        EstimateTrainingMemory(family, PaperParams(2000));
    EXPECT_NEAR(large.graph_bytes / small.graph_bytes, 4.0, 0.3)
        << FamilyName(family);
  }
}

TEST(MemoryModelTest, PaperOomPatternAtN2000) {
  // Paper Tables V-VII: on ~2000 nodes with a 32 GB budget, the dense
  // families OOM while DCRNN, GraphWaveNet, MTGNN and SAGDFN run.
  const MemoryParams p = PaperParams(2000);
  auto oom = [&](ModelFamily f) {
    return WouldOom(EstimateTrainingMemory(f, p), 32.0 * kGiB);
  };
  EXPECT_TRUE(oom(ModelFamily::kStgcn));
  EXPECT_TRUE(oom(ModelFamily::kGman));
  EXPECT_TRUE(oom(ModelFamily::kAgcrn));
  EXPECT_TRUE(oom(ModelFamily::kAstgcn));
  EXPECT_TRUE(oom(ModelFamily::kStsgcn));
  EXPECT_TRUE(oom(ModelFamily::kGts));
  EXPECT_TRUE(oom(ModelFamily::kStep));
  EXPECT_TRUE(oom(ModelFamily::kD2stgnn));

  EXPECT_FALSE(oom(ModelFamily::kDcrnn));
  EXPECT_FALSE(oom(ModelFamily::kGraphWaveNet));
  EXPECT_FALSE(oom(ModelFamily::kMtgnn));
  EXPECT_FALSE(oom(ModelFamily::kSagdfn));
}

TEST(MemoryModelTest, EveryoneFitsOnMetrLa) {
  // At N = 207 (METR-LA) nothing OOMs on 32 GB (paper Table III has
  // numbers for every model).
  const MemoryParams p = PaperParams(207);
  for (auto family : AllFamilies()) {
    EXPECT_FALSE(WouldOom(EstimateTrainingMemory(family, p), 32.0 * kGiB))
        << FamilyName(family);
  }
}

TEST(MemoryModelTest, GtsOomThresholdNearPaperReport) {
  // Paper Table IV: GTS handles 1000 nodes (batch 64) but not more.
  MemoryParams p = PaperParams(1000);
  p.batch = 64;
  EXPECT_FALSE(
      WouldOom(EstimateTrainingMemory(ModelFamily::kGts, p), 32.0 * kGiB));
  p.num_nodes = 2000;
  EXPECT_TRUE(
      WouldOom(EstimateTrainingMemory(ModelFamily::kGts, p), 32.0 * kGiB));
}

TEST(MemoryModelTest, D2stgnnCapsNearPaperReport) {
  // Paper Table IV: D2STGNN processes only ~200 nodes at batch 64.
  MemoryParams p = PaperParams(200);
  p.batch = 64;
  EXPECT_FALSE(WouldOom(EstimateTrainingMemory(ModelFamily::kD2stgnn, p),
                        32.0 * kGiB));
  p.num_nodes = 600;
  EXPECT_TRUE(WouldOom(EstimateTrainingMemory(ModelFamily::kD2stgnn, p),
                       32.0 * kGiB));
}

TEST(MemoryModelTest, SagdfnUsesLessGraphMemoryThanDense) {
  const MemoryParams p = PaperParams(2000);
  const double sagdfn =
      EstimateTrainingMemory(ModelFamily::kSagdfn, p).graph_bytes;
  for (auto family : {ModelFamily::kAgcrn, ModelFamily::kGts,
                      ModelFamily::kGman, ModelFamily::kStep}) {
    const double dense =
        EstimateTrainingMemory(family, p).graph_bytes;
    EXPECT_LT(sagdfn, dense / 4.0) << FamilyName(family);
  }
}

TEST(MemoryModelTest, FormulasMatchPaperTable1) {
  EXPECT_EQ(FormulaFor(ModelFamily::kAgcrn).computation,
            "O(N^2 d + N^2 D)");
  EXPECT_EQ(FormulaFor(ModelFamily::kAgcrn).memory, "O(N^2 + N d)");
  EXPECT_EQ(FormulaFor(ModelFamily::kGts).computation,
            "O(N^2 d^2 + N^2 D)");
  EXPECT_EQ(FormulaFor(ModelFamily::kStep).memory, "O(N^2 + N^2 d)");
  EXPECT_EQ(FormulaFor(ModelFamily::kSagdfn).computation,
            "O(N M d^2 + N M D)");
  EXPECT_EQ(FormulaFor(ModelFamily::kSagdfn).memory, "O(N M + N M d)");
}

TEST(MemoryModelTest, FlopsRatioMatchesNOverM) {
  // Table I: SAGDFN reduces the N^2 terms to N M, i.e. by N / M.
  const MemoryParams p = PaperParams(2000);
  const double dense = GraphComputeFlops(ModelFamily::kGts, p);
  const double slim = GraphComputeFlops(ModelFamily::kSagdfn, p);
  EXPECT_NEAR(dense / slim, static_cast<double>(p.num_nodes) / p.m, 1.0);
}

// Property: every family's estimate is monotone in N.
class MemoryMonotoneProperty
    : public ::testing::TestWithParam<ModelFamily> {};

TEST_P(MemoryMonotoneProperty, MonotoneInN) {
  double prev = 0.0;
  for (int64_t n : {100, 500, 1000, 2000, 4000}) {
    const double total =
        EstimateTrainingMemory(GetParam(), PaperParams(n)).total_bytes();
    EXPECT_GT(total, prev) << FamilyName(GetParam()) << " at N=" << n;
    prev = total;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MemoryMonotoneProperty,
    ::testing::ValuesIn(AllFamilies()),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      std::string name = FamilyName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sagdfn::core
