// Finite-difference verification of every differentiable op. These are the
// tests that guarantee the from-scratch autograd substrate computes the
// same math PyTorch would, which is what makes the SAGDFN reproduction
// faithful.
#include "autograd/grad_check.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "utils/rng.h"

namespace sagdfn::autograd {
namespace {

using tensor::Shape;
using tensor::Tensor;

using Fn = std::function<Variable(const std::vector<Variable>&)>;

void ExpectGradOk(const Fn& fn, const std::vector<Tensor>& inputs) {
  std::string error;
  EXPECT_TRUE(CheckGradients(fn, inputs, &error)) << error;
}

Tensor RandT(Shape shape, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  utils::Rng rng(seed);
  return Tensor::Uniform(std::move(shape), rng, lo, hi);
}

TEST(GradCheckTest, Binary) {
  Tensor a = RandT(Shape({2, 3}), 1);
  Tensor b = RandT(Shape({2, 3}), 2);
  ExpectGradOk([](const auto& v) { return SumAll(Add(v[0], v[1])); },
               {a, b});
  ExpectGradOk([](const auto& v) { return SumAll(Sub(v[0], v[1])); },
               {a, b});
  ExpectGradOk([](const auto& v) { return SumAll(Mul(v[0], v[1])); },
               {a, b});
  Tensor safe_b = RandT(Shape({2, 3}), 3, 1.0f, 2.0f);
  ExpectGradOk([](const auto& v) { return SumAll(Div(v[0], v[1])); },
               {a, safe_b});
}

TEST(GradCheckTest, BinaryBroadcast) {
  Tensor a = RandT(Shape({2, 3}), 4);
  Tensor b = RandT(Shape({3}), 5);
  Tensor c = RandT(Shape({2, 1}), 6);
  ExpectGradOk([](const auto& v) { return SumAll(Add(v[0], v[1])); },
               {a, b});
  ExpectGradOk([](const auto& v) { return SumAll(Mul(v[0], v[1])); },
               {a, c});
  // Weighted so the gradient is non-uniform.
  ExpectGradOk(
      [](const auto& v) {
        return SumAll(Mul(Add(v[0], v[1]), Mul(v[0], v[1])));
      },
      {a, b});
}

TEST(GradCheckTest, Unary) {
  Tensor a = RandT(Shape({2, 3}), 7);
  Tensor positive = RandT(Shape({2, 3}), 8, 0.5f, 2.0f);
  ExpectGradOk([](const auto& v) { return SumAll(Neg(v[0])); }, {a});
  ExpectGradOk([](const auto& v) { return SumAll(Exp(v[0])); }, {a});
  ExpectGradOk([](const auto& v) { return SumAll(Log(v[0])); }, {positive});
  ExpectGradOk([](const auto& v) { return SumAll(Sqrt(v[0])); },
               {positive});
  ExpectGradOk([](const auto& v) { return SumAll(Tanh(v[0])); }, {a});
  ExpectGradOk([](const auto& v) { return SumAll(Sigmoid(v[0])); }, {a});
  ExpectGradOk([](const auto& v) { return SumAll(Pow(v[0], 3.0f)); },
               {positive});
  ExpectGradOk([](const auto& v) { return SumAll(MulScalar(v[0], -2.5f)); },
               {a});
  ExpectGradOk([](const auto& v) { return SumAll(AddScalar(v[0], 1.5f)); },
               {a});
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep elements away from 0 where the subgradient is ambiguous.
  Tensor a = RandT(Shape({3, 3}), 9, 0.2f, 1.0f);
  Tensor b = RandT(Shape({3, 3}), 10, -1.0f, -0.2f);
  ExpectGradOk([](const auto& v) { return SumAll(Relu(v[0])); }, {a});
  ExpectGradOk([](const auto& v) { return SumAll(Relu(v[0])); }, {b});
  ExpectGradOk([](const auto& v) { return SumAll(Abs(v[0])); }, {a});
}

TEST(GradCheckTest, MatMul) {
  Tensor a = RandT(Shape({3, 4}), 11);
  Tensor b = RandT(Shape({4, 2}), 12);
  // Weight the output so gradients differ per element.
  Tensor w = RandT(Shape({3, 2}), 13);
  ExpectGradOk(
      [w](const auto& v) {
        return SumAll(Mul(MatMul(v[0], v[1]), Variable(w)));
      },
      {a, b});
}

TEST(GradCheckTest, BatchedMatMulAllBroadcasts) {
  Tensor a3 = RandT(Shape({2, 3, 4}), 14);
  Tensor b3 = RandT(Shape({2, 4, 2}), 15);
  Tensor b2 = RandT(Shape({4, 2}), 16);
  Tensor a2 = RandT(Shape({3, 4}), 17);
  Tensor w = RandT(Shape({2, 3, 2}), 18);
  auto weighted = [w](Variable out) {
    return SumAll(Mul(out, Variable(w)));
  };
  ExpectGradOk(
      [&](const auto& v) { return weighted(BatchedMatMul(v[0], v[1])); },
      {a3, b3});
  ExpectGradOk(
      [&](const auto& v) { return weighted(BatchedMatMul(v[0], v[1])); },
      {a3, b2});
  ExpectGradOk(
      [&](const auto& v) { return weighted(BatchedMatMul(v[0], v[1])); },
      {a2, b3});
}

TEST(GradCheckTest, Reductions) {
  Tensor a = RandT(Shape({3, 4}), 19);
  Tensor w0 = RandT(Shape({4}), 20);
  Tensor w1 = RandT(Shape({3}), 21);
  ExpectGradOk(
      [w0](const auto& v) {
        return SumAll(Mul(Sum(v[0], 0), Variable(w0)));
      },
      {a});
  ExpectGradOk(
      [w1](const auto& v) {
        return SumAll(Mul(Mean(v[0], 1), Variable(w1)));
      },
      {a});
  ExpectGradOk([](const auto& v) { return MeanAll(v[0]); }, {a});
}

TEST(GradCheckTest, ShapeOps) {
  Tensor a = RandT(Shape({2, 6}), 22);
  Tensor w = RandT(Shape({3, 4}), 23);
  ExpectGradOk(
      [w](const auto& v) {
        return SumAll(Mul(Reshape(v[0], {3, 4}), Variable(w)));
      },
      {a});
  Tensor wt = RandT(Shape({6, 2}), 24);
  ExpectGradOk(
      [wt](const auto& v) {
        return SumAll(Mul(Transpose(v[0], 0, 1), Variable(wt)));
      },
      {a});
  Tensor ws = RandT(Shape({2, 3}), 25);
  ExpectGradOk(
      [ws](const auto& v) {
        return SumAll(Mul(Slice(v[0], 1, 2, 5), Variable(ws)));
      },
      {a});
  Tensor wi = RandT(Shape({2, 4}), 26);
  ExpectGradOk(
      [wi](const auto& v) {
        return SumAll(
            Mul(IndexSelect(v[0], 1, {0, 0, 5, 3}), Variable(wi)));
      },
      {a});
}

TEST(GradCheckTest, ConcatAndStack) {
  Tensor a = RandT(Shape({2, 2}), 27);
  Tensor b = RandT(Shape({2, 3}), 28);
  Tensor w = RandT(Shape({2, 5}), 29);
  ExpectGradOk(
      [w](const auto& v) {
        return SumAll(Mul(Concat({v[0], v[1]}, 1), Variable(w)));
      },
      {a, b});
  Tensor c = RandT(Shape({2, 2}), 30);
  Tensor ws = RandT(Shape({2, 2, 2}), 31);
  ExpectGradOk(
      [ws](const auto& v) {
        return SumAll(Mul(Stack({v[0], v[1]}, 1), Variable(ws)));
      },
      {a, c});
}

TEST(GradCheckTest, SoftmaxWeighted) {
  Tensor a = RandT(Shape({3, 5}), 32);
  Tensor w = RandT(Shape({3, 5}), 33);
  ExpectGradOk(
      [w](const auto& v) {
        return SumAll(Mul(Softmax(v[0], 1), Variable(w)));
      },
      {a});
}

TEST(GradCheckTest, Losses) {
  Tensor pred = RandT(Shape({3, 4}), 34);
  Tensor target = RandT(Shape({3, 4}), 35, 2.0f, 3.0f);  // no zero diffs
  ExpectGradOk(
      [target](const auto& v) { return L1Loss(v[0], Variable(target)); },
      {pred});
  ExpectGradOk(
      [target](const auto& v) { return MseLoss(v[0], Variable(target)); },
      {pred});
}

TEST(GradCheckTest, CompositeExpression) {
  // A small end-to-end expression resembling one GRU gate.
  Tensor x = RandT(Shape({2, 3}), 36);
  Tensor w = RandT(Shape({3, 3}), 37);
  Tensor h = RandT(Shape({2, 3}), 38);
  ExpectGradOk(
      [](const auto& v) {
        Variable gate = Sigmoid(MatMul(v[0], v[1]));
        Variable cand = Tanh(Add(MatMul(v[0], v[1]), v[2]));
        return MeanAll(Add(Mul(gate, v[2]), Mul(gate, cand)));
      },
      {x, w, h});
}

}  // namespace
}  // namespace sagdfn::autograd
