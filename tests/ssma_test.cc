#include "core/ssma.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

SsmaConfig SmallConfig() {
  SsmaConfig config;
  config.embedding_dim = 4;
  config.m = 5;
  config.heads = 2;
  config.ffn_hidden = 6;
  config.alpha = 1.5f;
  return config;
}

std::vector<int64_t> Iota(int64_t m) {
  std::vector<int64_t> v(m);
  for (int64_t i = 0; i < m; ++i) v[i] = i;
  return v;
}

TEST(SsmaTest, OutputShape) {
  utils::Rng rng(1);
  SparseSpatialAttention ssma(SmallConfig(), rng);
  ag::Variable e(Tensor::Normal(Shape({9, 4}), rng), true);
  ag::Variable a_s = ssma.Forward(e, Iota(5));
  EXPECT_EQ(a_s.shape(), Shape({9, 5}));
  EXPECT_FALSE(tensor::HasNonFinite(a_s.value()));
}

TEST(SsmaTest, ParameterInventory) {
  utils::Rng rng(2);
  SsmaConfig config = SmallConfig();
  SparseSpatialAttention ssma(config, rng);
  // Per head: (2d x hidden + hidden) + (hidden x 2 + 2); plus W_a [2P, 1].
  const int64_t per_head =
      (2 * 4 * 6 + 6) + (6 * 2 + 2);
  EXPECT_EQ(ssma.ParameterCount(), 2 * per_head + 2 * 2 * 1);
}

TEST(SsmaTest, GradientsReachEmbeddingsAndAllParams) {
  utils::Rng rng(3);
  SparseSpatialAttention ssma(SmallConfig(), rng);
  ag::Variable e(Tensor::Normal(Shape({7, 4}), rng), true);
  auto index_set = std::vector<int64_t>{2, 4, 6, 0, 1};
  ag::Variable a_s = ssma.Forward(e, index_set);
  ag::SumAll(ag::Mul(a_s, a_s)).Backward();
  EXPECT_GT(tensor::SumAll(tensor::Abs(e.grad())).Item(), 0.0f);
  for (auto& [name, p] : ssma.NamedParameters()) {
    // The final bias of each head FFN shifts a whole entmax column
    // uniformly; entmax is shift-invariant along the normalized axis, so
    // that bias provably receives exactly zero gradient.
    const bool is_output_bias =
        name.find("layer1.bias") != std::string::npos;
    if (is_output_bias) {
      // Near-zero up to float rounding in the bisection solver.
      EXPECT_LT(tensor::SumAll(tensor::Abs(p.grad())).Item(), 1e-6f)
          << name;
      continue;
    }
    EXPECT_GT(tensor::SumAll(tensor::Abs(p.grad())).Item(), 0.0f)
        << "no gradient for " << name;
  }
}

TEST(SsmaTest, GradCheckThroughWholeModule) {
  utils::Rng rng(4);
  SsmaConfig config;
  config.embedding_dim = 3;
  config.m = 3;
  config.heads = 1;
  config.ffn_hidden = 4;
  config.alpha = 1.5f;
  SparseSpatialAttention ssma(config, rng);
  Tensor e = Tensor::Normal(Shape({5, 3}), rng, 0.0f, 0.5f);
  Tensor w = Tensor::Normal(Shape({5, 3}), rng);
  auto index_set = std::vector<int64_t>{0, 2, 4};
  std::string error;
  ag::GradCheckOptions options;
  options.tolerance = 8e-2;  // entmax support changes add noise
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::SumAll(
            ag::Mul(ssma.Forward(v[0], index_set), ag::Variable(w)));
      },
      {e}, &error, options))
      << error;
}

TEST(SsmaTest, EntmaxVariantSparserThanSoftmax) {
  utils::Rng rng(5);
  SsmaConfig entmax_config = SmallConfig();
  entmax_config.alpha = 2.0f;
  entmax_config.m = 16;

  SsmaConfig softmax_config = entmax_config;
  softmax_config.use_entmax = false;

  utils::Rng rng_a(7);
  utils::Rng rng_b(7);
  SparseSpatialAttention with_entmax(entmax_config, rng_a);
  SparseSpatialAttention with_softmax(softmax_config, rng_b);

  ag::Variable e(
      Tensor::Normal(Shape({40, 4}), rng, 0.0f, 2.0f), false);
  auto index_set = Iota(16);
  Tensor a_entmax = with_entmax.Forward(e, index_set).value();
  Tensor a_softmax = with_softmax.Forward(e, index_set).value();

  auto count_small = [](const Tensor& t) {
    int64_t c = 0;
    for (int64_t i = 0; i < t.size(); ++i) {
      if (std::abs(t[i]) < 1e-6f) ++c;
    }
    return c;
  };
  // Softmax never produces exact zeros; entmax with alpha=2 does (the
  // zeros survive the head projection since all heads share the support
  // pattern per entry only statistically — require strictly more).
  EXPECT_GT(count_small(a_entmax), count_small(a_softmax));
}

TEST(SsmaTest, InnerProductAblation) {
  utils::Rng rng(8);
  ag::Variable e(Tensor::Normal(Shape({6, 4}), rng), true);
  auto index_set = std::vector<int64_t>{1, 3, 5};
  ag::Variable a_s = InnerProductAdjacency(e, index_set);
  EXPECT_EQ(a_s.shape(), Shape({6, 3}));
  // Entry (i, j) equals <E_i, E_{I_j}>.
  const Tensor& ev = e.value();
  float expected = 0.0f;
  for (int64_t c = 0; c < 4; ++c) {
    expected += ev.At({2, c}) * ev.At({3, c});
  }
  EXPECT_NEAR(a_s.value().At({2, 1}), expected, 1e-4f);
}

TEST(SsmaTest, DifferentIndexSetsGiveDifferentColumns) {
  utils::Rng rng(9);
  SparseSpatialAttention ssma(SmallConfig(), rng);
  ag::Variable e(Tensor::Normal(Shape({12, 4}), rng), false);
  Tensor a1 = ssma.Forward(e, {0, 1, 2, 3, 4}).value();
  Tensor a2 = ssma.Forward(e, {7, 8, 9, 10, 11}).value();
  EXPECT_FALSE(tensor::AllClose(a1, a2));
}

TEST(SsmaTest, WrongIndexSetSizeDies) {
  utils::Rng rng(10);
  SparseSpatialAttention ssma(SmallConfig(), rng);
  ag::Variable e(Tensor::Normal(Shape({9, 4}), rng), false);
  EXPECT_DEATH(ssma.Forward(e, {0, 1}), "");
}

}  // namespace
}  // namespace sagdfn::core
