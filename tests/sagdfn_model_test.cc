#include "core/sagdfn.h"

#include <set>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

SagdfnConfig TinyConfig() {
  SagdfnConfig config;
  config.num_nodes = 10;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 4;
  config.horizon = 3;
  config.convergence_iters = 5;
  return config;
}

struct Inputs {
  Tensor x;
  Tensor future_tod;
};

Inputs MakeInputs(const SagdfnConfig& config, int64_t batch,
                  uint64_t seed = 1) {
  utils::Rng rng(seed);
  Inputs in;
  in.x = Tensor::Normal(
      Shape({batch, config.history, config.num_nodes, config.input_dim}),
      rng, 0.0f, 1.0f);
  in.future_tod =
      Tensor::Uniform(Shape({batch, config.horizon}), rng, 0.0f, 1.0f);
  return in;
}

TEST(SagdfnModelTest, ForwardShape) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 2);
  ag::Variable pred = model.Forward(in.x, in.future_tod, 0);
  EXPECT_EQ(pred.shape(), Shape({2, 3, 10}));
  EXPECT_FALSE(tensor::HasNonFinite(pred.value()));
}

TEST(SagdfnModelTest, IndexSetPopulatedAndValid) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 1);
  model.Forward(in.x, in.future_tod, 0);
  const auto& index_set = model.index_set();
  EXPECT_EQ(index_set.size(), 5u);
  std::set<int64_t> unique(index_set.begin(), index_set.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(SagdfnModelTest, GradientsReachEverything) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 2);
  ag::Variable pred = model.Forward(in.x, in.future_tod, 0);
  ag::MeanAll(ag::Abs(pred)).Backward();
  int64_t with_grad = 0;
  for (auto& [name, p] : model.NamedParameters()) {
    if (tensor::SumAll(tensor::Abs(p.grad())).Item() > 0.0f) ++with_grad;
  }
  // Everything except possibly dead-relu corners must receive gradient;
  // in particular the node embeddings must.
  EXPECT_GT(tensor::SumAll(tensor::Abs(model.embeddings().grad())).Item(),
            0.0f);
  EXPECT_GE(with_grad,
            static_cast<int64_t>(model.NamedParameters().size()) - 2);
}

TEST(SagdfnModelTest, SamplingFreezesAfterConvergenceIteration) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 1);
  model.SetTraining(true);
  // Past the convergence iteration r = 5 the index set must stop moving.
  model.Forward(in.x, in.future_tod, 10);
  auto frozen1 = model.index_set();
  model.Forward(in.x, in.future_tod, 11);
  auto frozen2 = model.index_set();
  EXPECT_EQ(frozen1, frozen2);
}

TEST(SagdfnModelTest, EvalDoesNotResample) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 1);
  model.SetTraining(true);
  model.Forward(in.x, in.future_tod, 0);
  auto training_set = model.index_set();
  model.SetTraining(false);
  model.Forward(in.x, in.future_tod, 1);
  EXPECT_EQ(model.index_set(), training_set);
}

TEST(SagdfnModelTest, DeterministicGivenSeedAndIteration) {
  SagdfnConfig config = TinyConfig();
  SagdfnModel model_a(config);
  SagdfnModel model_b(config);
  Inputs in = MakeInputs(config, 2);
  Tensor pa = model_a.Forward(in.x, in.future_tod, 0).value();
  Tensor pb = model_b.Forward(in.x, in.future_tod, 0).value();
  EXPECT_TRUE(tensor::AllClose(pa, pb));
}

TEST(SagdfnModelTest, AblationVariantsRun) {
  for (int variant = 0; variant < 3; ++variant) {
    SagdfnConfig config = TinyConfig();
    if (variant == 0) config.use_entmax = false;
    if (variant == 1) config.use_attention = false;
    if (variant == 2) config.use_sns = false;
    SagdfnModel model(config);
    Inputs in = MakeInputs(config, 1);
    ag::Variable pred = model.Forward(in.x, in.future_tod, 0);
    EXPECT_EQ(pred.shape(), Shape({1, 3, 10}))
        << "variant " << variant;
    EXPECT_FALSE(tensor::HasNonFinite(pred.value()));
  }
}

TEST(SagdfnModelTest, SlimAndDenseAdjacency) {
  SagdfnModel model(TinyConfig());
  Inputs in = MakeInputs(model.config(), 1);
  model.Forward(in.x, in.future_tod, 0);
  Tensor slim = model.ComputeSlimAdjacency();
  EXPECT_EQ(slim.shape(), Shape({10, 5}));
  Tensor dense = model.DenseAdjacency();
  EXPECT_EQ(dense.shape(), Shape({10, 10}));
  // Dense version has nonzeros only in the index-set columns.
  std::set<int64_t> columns(model.index_set().begin(),
                            model.index_set().end());
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 10; ++j) {
      if (columns.count(j) == 0) {
        EXPECT_FLOAT_EQ(dense.At({i, j}), 0.0f);
      }
    }
  }
}

TEST(SagdfnModelTest, ParameterCountMatchesConfigScaling) {
  SagdfnConfig small = TinyConfig();
  SagdfnConfig big = TinyConfig();
  big.hidden_dim = 12;
  SagdfnModel model_small(small);
  SagdfnModel model_big(big);
  EXPECT_GT(model_big.ParameterCount(), model_small.ParameterCount());
}

TEST(SagdfnModelTest, MIsCappedByN) {
  SagdfnConfig config = TinyConfig();
  config.m = 20;  // > num_nodes
  EXPECT_DEATH(SagdfnModel model(config), "m");
}

TEST(SagdfnModelTest, WrongHistoryDies) {
  SagdfnModel model(TinyConfig());
  utils::Rng rng(2);
  Tensor bad_x = Tensor::Normal(Shape({1, 7, 10, 2}), rng);
  Tensor tod = Tensor::Zeros(Shape({1, 3}));
  EXPECT_DEATH(model.Forward(bad_x, tod, 0), "");
}

}  // namespace
}  // namespace sagdfn::core
