#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/registry.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/time_series.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

TimeSeries TinySeries(int64_t t_steps = 120, int64_t n = 4,
                      int64_t steps_per_day = 24) {
  TimeSeries series;
  series.name = "tiny";
  series.steps_per_day = steps_per_day;
  series.values = Tensor::Zeros(Shape({t_steps, n}));
  for (int64_t t = 0; t < t_steps; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      series.values.At({t, i}) = static_cast<float>(t + 100 * i);
    }
  }
  return series;
}

TEST(TimeSeriesTest, CovariateHelpers) {
  TimeSeries s = TinySeries();
  EXPECT_DOUBLE_EQ(s.TimeOfDay(0), 0.0);
  EXPECT_DOUBLE_EQ(s.TimeOfDay(12), 0.5);
  EXPECT_DOUBLE_EQ(s.TimeOfDay(24), 0.0);
  EXPECT_EQ(s.DayOfWeek(0), 0);
  EXPECT_EQ(s.DayOfWeek(25), 1);
}

TEST(TimeSeriesTest, SliceAndSelectNodes) {
  TimeSeries s = TinySeries();
  TimeSeries two = SliceNodes(s, 2);
  EXPECT_EQ(two.num_nodes(), 2);
  EXPECT_FLOAT_EQ(two.values.At({5, 1}), 105.0f);
  TimeSeries picked = SelectNodes(s, {3, 0});
  EXPECT_FLOAT_EQ(picked.values.At({5, 0}), 305.0f);
  EXPECT_FLOAT_EQ(picked.values.At({5, 1}), 5.0f);
  TimeSeries clipped = SliceTime(s, 10, 20);
  EXPECT_EQ(clipped.num_steps(), 10);
  EXPECT_FLOAT_EQ(clipped.values.At({0, 0}), 10.0f);
}

TEST(ScalerTest, RoundTrip) {
  StandardScaler scaler;
  Tensor data = Tensor::FromVector({1, 2, 3, 4, 5, 6}, Shape({3, 2}));
  scaler.Fit(data);
  Tensor scaled = scaler.Transform(data);
  EXPECT_NEAR(tensor::MeanAll(scaled).Item(), 0.0f, 1e-5f);
  Tensor back = scaler.InverseTransform(scaled);
  EXPECT_TRUE(tensor::AllClose(back, data, 1e-4f, 1e-4f));
}

TEST(ScalerTest, ConstantSeriesSafe) {
  StandardScaler scaler;
  scaler.Fit(Tensor::Full(Shape({10}), 5.0f));
  Tensor scaled = scaler.Transform(Tensor::Full(Shape({10}), 5.0f));
  EXPECT_FALSE(tensor::HasNonFinite(scaled));
  EXPECT_NEAR(scaled[0], 0.0f, 1e-6f);
}

TEST(WindowDatasetTest, SplitSizesAndCoverage) {
  ForecastDataset dataset(TinySeries(200), WindowSpec{6, 3});
  // 70/10/20 chronological split; windows never cross boundaries.
  EXPECT_EQ(dataset.NumSamples(Split::kTrain), 140 - 9 + 1);
  EXPECT_EQ(dataset.NumSamples(Split::kValidation), 20 - 9 + 1);
  EXPECT_EQ(dataset.NumSamples(Split::kTest), 40 - 9 + 1);
  EXPECT_EQ(dataset.TrainEndStep(), 140);
}

TEST(WindowDatasetTest, BatchShapesAndAlignment) {
  ForecastDataset dataset(TinySeries(200), WindowSpec{6, 3});
  Batch batch = dataset.GetBatch(Split::kTrain, 0, 4);
  EXPECT_EQ(batch.x.shape(), Shape({4, 6, 4, 2}));
  EXPECT_EQ(batch.y.shape(), Shape({4, 3, 4}));
  EXPECT_EQ(batch.future_tod.shape(), Shape({4, 3}));

  // Window 0 of train: history t=0..5, target t=6..8 for node 0 (values
  // equal to t).
  EXPECT_FLOAT_EQ(batch.y.At({0, 0, 0}), 6.0f);
  EXPECT_FLOAT_EQ(batch.y.At({0, 2, 0}), 8.0f);
  // Scaled inputs invert back to raw values.
  const auto& scaler = dataset.scaler();
  const float x0 = batch.x.At({0, 0, 0, 0});
  EXPECT_NEAR(x0 * scaler.stddev() + scaler.mean(), 0.0f, 1e-2f);
  // Covariate channel carries time of day.
  EXPECT_NEAR(batch.x.At({0, 3, 0, 1}), 3.0f / 24.0f, 1e-6f);
  EXPECT_NEAR(batch.future_tod.At({0, 0}), 6.0f / 24.0f, 1e-6f);
}

TEST(WindowDatasetTest, ValTestValuesComeFromLaterSteps) {
  ForecastDataset dataset(TinySeries(200), WindowSpec{6, 3});
  Batch val = dataset.GetBatch(Split::kValidation, 0, 1);
  // Validation windows start at step 140.
  EXPECT_FLOAT_EQ(val.y.At({0, 0, 0}), 146.0f);
  Batch test = dataset.GetBatch(Split::kTest, 0, 1);
  EXPECT_FLOAT_EQ(test.y.At({0, 0, 0}), 166.0f);
}

TEST(WindowDatasetTest, ShuffledOrderIsPermutation) {
  ForecastDataset dataset(TinySeries(200), WindowSpec{6, 3});
  utils::Rng rng(1);
  auto order = dataset.ShuffledTrainOrder(rng);
  EXPECT_EQ(static_cast<int64_t>(order.size()),
            dataset.NumSamples(Split::kTrain));
  std::set<int64_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST(WindowDatasetTest, TooShortSeriesDies) {
  EXPECT_DEATH(ForecastDataset(TinySeries(20), WindowSpec{12, 12}),
               "series too short");
}

TEST(SyntheticTest, TrafficShapeAndRange) {
  TrafficOptions options;
  options.num_nodes = 20;
  options.num_days = 2;
  options.steps_per_day = 48;
  graph::SpatialGraph latent;
  TimeSeries series = GenerateTraffic(options, &latent);
  EXPECT_EQ(series.num_steps(), 96);
  EXPECT_EQ(series.num_nodes(), 20);
  EXPECT_EQ(latent.num_nodes, 20);
  EXPECT_GE(tensor::MinAll(series.values), 3.0f);
  EXPECT_LE(tensor::MaxAll(series.values), 80.0f);
  EXPECT_FALSE(tensor::HasNonFinite(series.values));
}

TEST(SyntheticTest, TrafficDeterministicBySeed) {
  TrafficOptions options;
  options.num_nodes = 10;
  options.num_days = 1;
  options.steps_per_day = 48;
  TimeSeries a = GenerateTraffic(options);
  TimeSeries b = GenerateTraffic(options);
  EXPECT_TRUE(tensor::AllClose(a.values, b.values));
  options.seed = 99;
  TimeSeries c = GenerateTraffic(options);
  EXPECT_FALSE(tensor::AllClose(a.values, c.values));
}

TEST(SyntheticTest, TrafficHasRushHourDip) {
  TrafficOptions options;
  options.num_nodes = 30;
  options.num_days = 7;
  options.steps_per_day = 96;
  options.noise_std = 0.3;
  TimeSeries series = GenerateTraffic(options);
  // Average weekday speed at 08:00 should be well below 03:00.
  double rush = 0.0;
  double night = 0.0;
  int64_t days = 0;
  for (int64_t day = 0; day < 5; ++day) {  // weekdays
    const int64_t base = day * 96;
    ++days;
    for (int64_t i = 0; i < 30; ++i) {
      rush += series.values.At({base + 32, i});   // 08:00
      night += series.values.At({base + 12, i});  // 03:00
    }
  }
  EXPECT_LT(rush / days, night / days - 5.0 * 30);
}

TEST(SyntheticTest, NeighborsCorrelateMoreThanStrangers) {
  TrafficOptions options;
  options.num_nodes = 40;
  options.num_days = 6;
  options.steps_per_day = 96;
  options.noise_std = 0.5;
  graph::SpatialGraph latent;
  TimeSeries series = GenerateTraffic(options, &latent);

  // Compare mean |corr| of connected vs unconnected pairs on residuals
  // (subtract per-slot mean to remove the shared daily pattern).
  const int64_t t_steps = series.num_steps();
  const int64_t n = 40;
  std::vector<double> mean(n, 0.0);
  for (int64_t t = 0; t < t_steps; ++t) {
    for (int64_t i = 0; i < n; ++i) mean[i] += series.values.At({t, i});
  }
  for (auto& m : mean) m /= t_steps;
  auto corr = [&](int64_t a, int64_t b) {
    double num = 0, da = 0, db = 0;
    for (int64_t t = 0; t < t_steps; ++t) {
      const double va = series.values.At({t, a}) - mean[a];
      const double vb = series.values.At({t, b}) - mean[b];
      num += va * vb;
      da += va * va;
      db += vb * vb;
    }
    return num / std::sqrt(da * db + 1e-12);
  };
  double connected = 0, unconnected = 0;
  int64_t nc = 0, nu = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (latent.adjacency.At({i, j}) > 0.0f) {
        connected += corr(i, j);
        ++nc;
      } else {
        unconnected += corr(i, j);
        ++nu;
      }
    }
  }
  ASSERT_GT(nc, 0);
  ASSERT_GT(nu, 0);
  EXPECT_GT(connected / nc, unconnected / nu + 0.05);
}

TEST(SyntheticTest, CarparkRespectsCapacity) {
  CarparkOptions options;
  options.num_nodes = 30;
  options.num_days = 2;
  options.steps_per_day = 48;
  options.num_clusters = 4;
  std::vector<int64_t> clusters;
  TimeSeries series = GenerateCarpark(options, &clusters);
  EXPECT_EQ(series.num_nodes(), 30);
  EXPECT_EQ(clusters.size(), 30u);
  EXPECT_GE(tensor::MinAll(series.values), 0.0f);
  EXPECT_LE(tensor::MaxAll(series.values),
            static_cast<float>(options.max_capacity));
  // Values are integer lot counts.
  for (int64_t i = 0; i < series.values.size(); ++i) {
    const float v = series.values[i];
    EXPECT_FLOAT_EQ(v, std::round(v));
  }
}

TEST(RegistryTest, KnownDatasetsAndInfo) {
  auto names = KnownDatasets();
  EXPECT_EQ(names.size(), 4u);
  DatasetInfo info = GetDatasetInfo("metr-la-sim", DatasetScale::kFull);
  EXPECT_EQ(info.num_nodes, 207);
  EXPECT_EQ(info.steps_per_day, 288);
  DatasetInfo quick = GetDatasetInfo("london2000-sim", DatasetScale::kQuick);
  EXPECT_LT(quick.num_nodes, 2000);
  DatasetInfo full = GetDatasetInfo("london2000-sim", DatasetScale::kFull);
  EXPECT_EQ(full.num_nodes, 2000);
  EXPECT_EQ(full.steps_per_day, 24);
}

TEST(RegistryTest, MakeDatasetMatchesInfo) {
  TimeSeries series = MakeDataset("metr-la-sim", DatasetScale::kQuick);
  DatasetInfo info = GetDatasetInfo("metr-la-sim", DatasetScale::kQuick);
  EXPECT_EQ(series.num_nodes(), info.num_nodes);
  EXPECT_EQ(series.num_steps(), info.num_steps);
}

TEST(RegistryTest, WindowSpecs) {
  WindowSpec traffic = DefaultWindowSpec("metr-la-sim");
  EXPECT_EQ(traffic.history, 12);
  EXPECT_EQ(traffic.horizon, 12);
  WindowSpec carpark = DefaultWindowSpec("carpark1918-sim");
  EXPECT_EQ(carpark.history, 24);
  EXPECT_EQ(carpark.horizon, 12);
}

TEST(CsvTest, RoundTrip) {
  TimeSeries series = TinySeries(30, 3);
  const std::string path = ::testing::TempDir() + "/series_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(series, path).ok());
  auto loaded = ReadCsv(path, series.steps_per_day);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(tensor::AllClose(loaded.value().values, series.values));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileAndBadContent) {
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv", 24).ok());
  const std::string path = ::testing::TempDir() + "/bad.csv";
  {
    std::ofstream out(path);
    out << "t,node_0\n1,2\n3\n";  // second row too short
  }
  auto result = ReadCsv(path, 24);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sagdfn::data
