// Stress tests: randomly composed autograd graphs checked against finite
// differences, plus tape-behavior edge cases (deep chains, wide fan-out,
// reuse). These catch interaction bugs single-op tests cannot.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::autograd {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Builds a random smooth expression of the two inputs using a fixed op
/// vocabulary. Every op used here is smooth (no relu/abs kinks) so finite
/// differences are reliable.
Variable RandomExpression(const std::vector<Variable>& inputs,
                          uint64_t seed, int depth) {
  utils::Rng rng(seed);
  Variable a = inputs[0];
  Variable b = inputs[1];
  Variable current = Add(a, b);
  for (int step = 0; step < depth; ++step) {
    switch (rng.UniformInt(6)) {
      case 0:
        current = Mul(current, a);
        break;
      case 1:
        current = Add(current, Mul(b, b));
        break;
      case 2:
        current = Tanh(current);
        break;
      case 3:
        current = Sigmoid(Add(current, b));
        break;
      case 4:
        current = MulScalar(current, 0.7f);
        break;
      case 5:
        current = Sub(current, Mean(current, 1, /*keepdim=*/true));
        break;
    }
  }
  return MeanAll(Mul(current, current));
}

class RandomGraphStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphStress, GradCheckRandomComposites) {
  utils::Rng rng(GetParam());
  Tensor a = Tensor::Uniform(Shape({3, 4}), rng, -0.8f, 0.8f);
  Tensor b = Tensor::Uniform(Shape({3, 4}), rng, -0.8f, 0.8f);
  for (int depth : {2, 5, 9}) {
    std::string error;
    EXPECT_TRUE(CheckGradients(
        [&](const std::vector<Variable>& v) {
          return RandomExpression(v, GetParam() * 31 + depth, depth);
        },
        {a, b}, &error))
        << "depth " << depth << ": " << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphStress,
                         ::testing::Values(501, 502, 503, 504, 505));

TEST(TapeStressTest, DeepChainBackward) {
  // 200 chained ops: the topological sort must stay correct and not
  // overflow (iterative DFS).
  Variable x(Tensor::Full(Shape({4}), 0.5f), true);
  Variable current = x;
  for (int i = 0; i < 200; ++i) {
    current = MulScalar(Tanh(current), 1.01f);
  }
  SumAll(current).Backward();
  Tensor g = x.grad();
  EXPECT_FALSE(tensor::HasNonFinite(g));
  EXPECT_GT(tensor::SumAll(tensor::Abs(g)).Item(), 0.0f);
}

TEST(TapeStressTest, WideFanOutAccumulates) {
  // One leaf feeding 64 branches: gradient = sum of branch gradients.
  Variable x(Tensor::Ones(Shape({2})), true);
  std::vector<Variable> branches;
  for (int i = 0; i < 64; ++i) {
    branches.push_back(MulScalar(x, static_cast<float>(i)));
  }
  Variable total = branches[0];
  for (size_t i = 1; i < branches.size(); ++i) {
    total = Add(total, branches[i]);
  }
  SumAll(total).Backward();
  // d/dx sum_i (i * x) = sum_i i = 63 * 64 / 2.
  EXPECT_FLOAT_EQ(x.grad()[0], 2016.0f);
}

TEST(TapeStressTest, SharedSubexpressionGradOnce) {
  // y = s + s where s = x^2: ds counted twice -> dy/dx = 4x.
  Variable x(Tensor::Full(Shape({1}), 3.0f), true);
  Variable s = Mul(x, x);
  SumAll(Add(s, s)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(TapeStressTest, GraphFreedAfterBackward) {
  // Nodes are shared_ptr-owned by the output; dropping the output frees
  // the tape. Exercise by building/backwarding many graphs in a loop —
  // failure mode is runaway memory, surfaced here as a crash/timeout.
  Variable x(Tensor::Ones(Shape({64, 64})), true);
  for (int iter = 0; iter < 50; ++iter) {
    x.ZeroGrad();
    Variable loss = MeanAll(Tanh(MatMul(x, x)));
    loss.Backward();
  }
  SUCCEED();
}

TEST(TapeStressTest, MixedGradAndNoGradRegions) {
  Variable x(Tensor::Full(Shape({2}), 2.0f), true);
  Variable a = Mul(x, x);  // tracked
  Variable b;
  {
    NoGradGuard guard;
    b = Mul(x, x);  // constant w.r.t. the tape
  }
  SumAll(Add(a, b)).Backward();
  // Only the tracked branch contributes: d/dx x^2 = 2x = 4.
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(TapeStressTest, ConstantBranchesPruned) {
  // A large constant (requires_grad = false) subtree hanging off the loss
  // must not receive gradients or break traversal.
  utils::Rng rng(7);
  Variable x(Tensor::Ones(Shape({4})), true);
  Variable constant(Tensor::Normal(Shape({4}), rng), false);
  Variable frozen = Tanh(Mul(constant, constant));  // untracked subtree
  Variable loss = MeanAll(Add(Mul(x, x), frozen));
  loss.Backward();
  EXPECT_TRUE(tensor::AllClose(constant.grad(),
                               Tensor::Zeros(Shape({4}))));
  EXPECT_TRUE(tensor::AllClose(x.grad(),
                               Tensor::Full(Shape({4}), 0.5f)));
}

}  // namespace
}  // namespace sagdfn::autograd
