#include "core/entmax.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

void ExpectSimplex(const Tensor& p, int64_t axis) {
  Tensor sums = tensor::Sum(p, axis);
  for (int64_t i = 0; i < sums.size(); ++i) {
    EXPECT_NEAR(sums[i], 1.0f, 1e-4f);
  }
  EXPECT_GE(tensor::MinAll(p), 0.0f);
}

TEST(EntmaxTest, Alpha1MatchesSoftmax) {
  utils::Rng rng(1);
  Tensor z = Tensor::Normal(Shape({3, 7}), rng);
  Tensor p = EntmaxForward(z, 1.0f, 1);
  EXPECT_TRUE(tensor::AllClose(p, tensor::Softmax(z, 1), 1e-5f, 1e-4f));
}

TEST(EntmaxTest, NearAlpha1ConvergesToSoftmax) {
  utils::Rng rng(2);
  Tensor z = Tensor::Normal(Shape({4, 5}), rng);
  Tensor p = EntmaxForward(z, 1.02f, 1);
  Tensor s = tensor::Softmax(z, 1);
  // Close but not necessarily identical.
  EXPECT_LT(tensor::MaxAll(tensor::Abs(tensor::Sub(p, s))), 0.05f);
}

TEST(EntmaxTest, SparsemaxClosedFormTwoElements) {
  // For alpha=2, two logits (a, b): if a - b >= 1 the output is (1, 0);
  // otherwise ((1 + a - b) / 2, (1 - a + b) / 2).
  Tensor z = Tensor::FromVector({0.6f, 0.2f}, Shape({2}));
  Tensor p = EntmaxForward(z, 2.0f, 0);
  EXPECT_NEAR(p[0], 0.7f, 1e-4f);
  EXPECT_NEAR(p[1], 0.3f, 1e-4f);

  Tensor z2 = Tensor::FromVector({2.0f, 0.0f}, Shape({2}));
  Tensor p2 = EntmaxForward(z2, 2.0f, 0);
  EXPECT_NEAR(p2[0], 1.0f, 1e-4f);
  EXPECT_NEAR(p2[1], 0.0f, 1e-4f);
}

TEST(EntmaxTest, OutputOnSimplexForAllAlphas) {
  utils::Rng rng(3);
  Tensor z = Tensor::Normal(Shape({5, 9}), rng, 0.0f, 2.0f);
  for (float alpha : {1.0f, 1.3f, 1.5f, 2.0f, 2.5f, 3.0f}) {
    Tensor p = EntmaxForward(z, alpha, 1);
    ExpectSimplex(p, 1);
  }
}

TEST(EntmaxTest, SparsityIncreasesWithAlpha) {
  utils::Rng rng(4);
  Tensor z = Tensor::Normal(Shape({20, 30}), rng, 0.0f, 2.0f);
  double prev_sparsity = -1.0;
  for (float alpha : {1.2f, 1.5f, 2.0f, 2.5f}) {
    Tensor p = EntmaxForward(z, alpha, 1);
    const double sparsity = graph::Sparsity(p);
    EXPECT_GE(sparsity, prev_sparsity);
    prev_sparsity = sparsity;
  }
  // Softmax is fully dense.
  EXPECT_DOUBLE_EQ(graph::Sparsity(EntmaxForward(z, 1.0f, 1)), 0.0);
  // Alpha=2.5 on spread logits produces real sparsity.
  EXPECT_GT(prev_sparsity, 0.3);
}

TEST(EntmaxTest, ShiftInvariance) {
  utils::Rng rng(5);
  Tensor z = Tensor::Normal(Shape({2, 6}), rng);
  Tensor shifted = tensor::AddScalar(z, 7.5f);
  for (float alpha : {1.5f, 2.0f}) {
    EXPECT_TRUE(tensor::AllClose(EntmaxForward(z, alpha, 1),
                                 EntmaxForward(shifted, alpha, 1), 1e-4f,
                                 1e-3f));
  }
}

TEST(EntmaxTest, PreservesOrdering) {
  Tensor z = Tensor::FromVector({3, 1, 2, 0}, Shape({4}));
  Tensor p = EntmaxForward(z, 1.5f, 0);
  EXPECT_GT(p[0], p[2]);
  EXPECT_GE(p[2], p[1]);
  EXPECT_GE(p[1], p[3]);
}

TEST(EntmaxTest, WinnerTakesAllForLargeGap) {
  Tensor z = Tensor::FromVector({10, 0, 0, 0}, Shape({4}));
  Tensor p = EntmaxForward(z, 2.0f, 0);
  EXPECT_NEAR(p[0], 1.0f, 1e-4f);
}

TEST(EntmaxTest, AxisSelection) {
  utils::Rng rng(6);
  Tensor z = Tensor::Normal(Shape({3, 4, 2}), rng);
  Tensor p1 = EntmaxForward(z, 1.7f, 1);
  ExpectSimplex(p1, 1);
  Tensor p2 = EntmaxForward(z, 1.7f, 2);
  ExpectSimplex(p2, 2);
  // Axis -2 aliases axis 1.
  EXPECT_TRUE(tensor::AllClose(EntmaxForward(z, 1.7f, -2), p1));
}

TEST(EntmaxTest, BackwardMatchesFiniteDifferences) {
  utils::Rng rng(7);
  for (float alpha : {1.3f, 1.5f, 2.0f}) {
    Tensor z = Tensor::Normal(Shape({3, 5}), rng, 0.0f, 0.8f);
    Tensor w = Tensor::Normal(Shape({3, 5}), rng);
    std::string error;
    EXPECT_TRUE(ag::CheckGradients(
        [&](const std::vector<ag::Variable>& v) {
          return ag::SumAll(
              ag::Mul(Entmax(v[0], alpha, 1), ag::Variable(w)));
        },
        {z}, &error))
        << "alpha=" << alpha << ": " << error;
  }
}

TEST(EntmaxTest, BackwardZeroOffSupport) {
  // Gradient w.r.t. logits of pruned entries must be zero.
  Tensor z = Tensor::FromVector({5, 0, -5}, Shape({3}));
  ag::Variable v(z, true);
  ag::Variable p = Entmax(v, 2.0f, 0);
  EXPECT_NEAR(p.value()[2], 0.0f, 1e-5f);
  ag::SumAll(ag::Mul(p, p)).Backward();
  EXPECT_FLOAT_EQ(v.grad()[2], 0.0f);
}

TEST(EntmaxTest, GradientSumsToZero) {
  // Like softmax, entmax gradients sum to zero along the normalized axis
  // (the simplex constraint).
  utils::Rng rng(8);
  Tensor z = Tensor::Normal(Shape({6}), rng);
  Tensor w = Tensor::Normal(Shape({6}), rng);
  ag::Variable v(z, true);
  ag::SumAll(ag::Mul(Entmax(v, 1.5f, 0), ag::Variable(w))).Backward();
  float total = 0.0f;
  for (int64_t i = 0; i < 6; ++i) total += v.grad()[i];
  EXPECT_NEAR(total, 0.0f, 1e-4f);
}

TEST(EntmaxTest, BackwardStridedAxis3d) {
  // axis=1 of a rank-3 tensor: the AxisView walks strided (non-contiguous)
  // vectors — the layout SSMA uses when sparsifying [N, M, 2] scores
  // along M. Covers both a mid-range alpha and one just above the
  // softmax-fallback boundary (alpha - 1 >= 1e-4, entmax.cc's
  // kSoftmaxEpsilon), where the bisection exponent 1/(alpha-1) is large.
  utils::Rng rng(9);
  for (float alpha : {1.7f, 1.01f}) {
    Tensor z = Tensor::Normal(Shape({2, 4, 3}), rng, 0.0f, 0.8f);
    Tensor w = Tensor::Normal(Shape({2, 4, 3}), rng);
    std::string error;
    EXPECT_TRUE(ag::CheckGradients(
        [&](const std::vector<ag::Variable>& v) {
          return ag::SumAll(
              ag::Mul(Entmax(v[0], alpha, 1), ag::Variable(w)));
        },
        {z}, &error))
        << "alpha=" << alpha << ": " << error;
  }
}

TEST(EntmaxTest, SoftmaxBoundaryContinuity) {
  // alpha within kSoftmaxEpsilon (1e-4) of 1.0 short-circuits to the
  // closed-form softmax; just above it the bisection solver takes over.
  // The two paths must agree at the boundary (entmax is continuous in
  // alpha) and the bisection output must still be a simplex.
  utils::Rng rng(10);
  Tensor z = Tensor::Normal(Shape({3, 4, 5}), rng);
  Tensor s = tensor::Softmax(z, 1);
  Tensor inside = EntmaxForward(z, 1.0f + 0.5e-4f, 1);  // fast path
  EXPECT_TRUE(tensor::AllClose(inside, s, 1e-6f, 1e-6f));
  Tensor above = EntmaxForward(z, 1.0f + 4e-4f, 1);  // bisection path
  ExpectSimplex(above, 1);
  EXPECT_LT(tensor::MaxAll(tensor::Abs(tensor::Sub(above, s))), 5e-3f);
}

// Property: EntmaxForward lands on the probability simplex for random
// shapes, every axis, across the alpha range — including the strided
// (axis != last) paths on rank-3/4 tensors.
TEST(EntmaxTest, SimplexOnRandomShapesAllAxes) {
  utils::Rng rng(11);
  const std::vector<Shape> shapes = {Shape({7}), Shape({4, 6}),
                                     Shape({3, 5, 4}),
                                     Shape({2, 3, 4, 3})};
  for (const Shape& shape : shapes) {
    Tensor z = Tensor::Normal(shape, rng, 0.0f, 1.5f);
    for (int64_t axis = 0; axis < shape.ndim(); ++axis) {
      for (float alpha : {1.2f, 1.5f, 2.0f, 3.0f}) {
        Tensor p = EntmaxForward(z, alpha, axis);
        ExpectSimplex(p, axis);
        EXPECT_FALSE(tensor::HasNonFinite(p));
      }
    }
  }
}

TEST(EntmaxTest, InvalidAlphaDies) {
  Tensor z = Tensor::Ones(Shape({3}));
  EXPECT_DEATH(EntmaxForward(z, 0.5f, 0), "alpha");
  EXPECT_DEATH(EntmaxForward(z, 5.0f, 0), "alpha");
}

// Property: simplex + sparsity-monotonicity across alpha / shape sweeps.
struct EntmaxCase {
  float alpha;
  int64_t rows;
  int64_t cols;
};

class EntmaxProperty : public ::testing::TestWithParam<EntmaxCase> {};

TEST_P(EntmaxProperty, SimplexInvariant) {
  const auto& c = GetParam();
  utils::Rng rng(17 + static_cast<uint64_t>(c.alpha * 10));
  Tensor z = Tensor::Normal(Shape({c.rows, c.cols}), rng, 0.0f, 1.5f);
  Tensor p = EntmaxForward(z, c.alpha, 1);
  ExpectSimplex(p, 1);
  EXPECT_FALSE(tensor::HasNonFinite(p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EntmaxProperty,
    ::testing::Values(EntmaxCase{1.0f, 2, 3}, EntmaxCase{1.25f, 5, 8},
                      EntmaxCase{1.5f, 1, 20}, EntmaxCase{1.75f, 8, 2},
                      EntmaxCase{2.0f, 6, 6}, EntmaxCase{2.5f, 3, 11},
                      EntmaxCase{3.5f, 4, 4}));

}  // namespace
}  // namespace sagdfn::core
