#include <cmath>
// End-to-end tests mirroring the paper's claims at miniature scale:
// SAGDFN trains end-to-end on spatially-correlated synthetic data, beats a
// temporal-only model, recovers latent spatial structure, and its slim
// pipeline uses less memory than the dense counterpart.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/registry.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace sagdfn {
namespace {

data::ForecastDataset SpatialDataset(graph::SpatialGraph* latent = nullptr,
                                     int64_t num_nodes = 24) {
  data::TrafficOptions options;
  options.num_nodes = num_nodes;
  options.num_days = 6;
  options.steps_per_day = 48;
  options.radius = 0.3;
  options.kernel_sigma = 0.2;
  // Strong graph-coupled latent field: the next value of a node is driven
  // by its neighbors' current state, which only a spatial model can use.
  options.spatial_rho = 0.95;
  options.innovation_std = 3.0;
  options.noise_std = 1.0;
  options.seed = 17;
  return data::ForecastDataset(data::GenerateTraffic(options, latent),
                               data::WindowSpec{8, 4});
}

core::SagdfnConfig SmallConfig(const data::ForecastDataset& dataset) {
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 6;
  config.m = 8;
  config.k = 6;
  config.hidden_dim = 12;
  config.heads = 2;
  config.ffn_hidden = 6;
  config.diffusion_steps = 2;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.convergence_iters = 10;
  return config;
}

core::TrainOptions MediumTrain() {
  core::TrainOptions options;
  options.epochs = 5;
  options.batch_size = 8;
  options.learning_rate = 0.02;
  options.max_train_batches_per_epoch = 15;
  options.max_eval_batches = 4;
  return options;
}

TEST(IntegrationTest, SagdfnLearnsOnSpatialData) {
  data::ForecastDataset dataset = SpatialDataset();
  core::SagdfnModel model(SmallConfig(dataset));
  core::Trainer trainer(&model, &dataset, MediumTrain());
  core::TrainResult result = trainer.Train();
  // Loss decreases over training.
  EXPECT_LT(result.epoch_train_loss.back(),
            0.9 * result.epoch_train_loss.front());
  // Final accuracy is sane for speeds in [3, 80].
  auto scores = trainer.EvaluateSplit(data::Split::kTest, {1, 4});
  EXPECT_LT(scores[0].mae, 10.0);
}

TEST(IntegrationTest, SagdfnBeatsLstmOnDriverFollowerData) {
  // The paper's core mechanism, distilled: one globally-significant
  // "driver" node moves as a smooth random walk and every other node
  // replays it with a one-step lag. A temporal-only model sees a
  // follower's own (stale) history; a spatial model reads the driver's
  // fresh value — exactly the information the Significant Neighbors
  // Sampling module is built to surface. The comparison is against LSTM
  // (same recurrent backbone, no spatial mechanism) so it isolates the
  // graph diffusion.
  utils::Rng rng(23);
  const int64_t n = 16;
  const int64_t t_steps = 480;
  tensor::Tensor values =
      tensor::Tensor::Zeros(tensor::Shape({t_steps, n}));
  std::vector<double> driver_history(t_steps);
  double state = 0.0;
  for (int64_t t = 0; t < t_steps; ++t) {
    state = 0.97 * state + rng.Normal(0.0, 2.0);
    driver_history[t] = state;
    values.At({t, 0}) = static_cast<float>(50.0 + state);
    for (int64_t i = 1; i < n; ++i) {
      const double base = t >= 1 ? driver_history[t - 1] : 0.0;
      values.At({t, i}) =
          static_cast<float>(50.0 + base + rng.Normal(0.0, 0.3));
    }
  }
  data::TimeSeries series{"driver-follower", values, 48};
  data::ForecastDataset dataset(series, data::WindowSpec{8, 4});

  baselines::FitOptions fit;
  fit.epochs = 12;
  fit.batch_size = 8;
  fit.learning_rate = 0.02;
  fit.max_train_batches_per_epoch = 20;
  fit.max_eval_batches = 8;

  baselines::ModelSizing sizing;
  sizing.hidden = 12;
  sizing.sagdfn_m = 6;
  sizing.sagdfn_k = 4;
  sizing.sagdfn_embedding = 6;

  auto sagdfn = baselines::MakeForecaster("SAGDFN", sizing);
  sagdfn->Fit(dataset, fit);
  tensor::Tensor sagdfn_pred =
      sagdfn->Predict(dataset, data::Split::kTest, 0);

  auto lstm = baselines::MakeForecaster("LSTM", sizing);
  lstm->Fit(dataset, fit);
  tensor::Tensor temporal_pred =
      lstm->Predict(dataset, data::Split::kTest, 0);

  tensor::Tensor truth =
      baselines::CollectTruth(dataset, data::Split::kTest,
                              sagdfn_pred.dim(0));
  const double sagdfn_mae = metrics::MaskedMae(sagdfn_pred, truth);
  const double temporal_mae = metrics::MaskedMae(temporal_pred, truth);
  EXPECT_LT(sagdfn_mae, temporal_mae);
}

TEST(IntegrationTest, LearnedAdjacencyBeatsRandomOnLatentGraph) {
  // After training, SAGDFN's dense-ified adjacency should overlap the
  // generator's latent graph more than an untrained model's does.
  graph::SpatialGraph latent;
  data::ForecastDataset dataset = SpatialDataset(&latent, 24);

  core::SagdfnConfig config = SmallConfig(dataset);
  core::SagdfnModel trained(config);
  core::TrainOptions options = MediumTrain();
  options.epochs = 6;
  core::Trainer trainer(&trained, &dataset, options);
  trainer.Train();

  core::SagdfnConfig config_untrained = config;
  config_untrained.seed = 555;
  core::SagdfnModel untrained(config_untrained);

  const int64_t k = 4;
  const double trained_overlap = graph::TopKOverlap(
      trained.DenseAdjacency(), latent.adjacency, k);
  const double untrained_overlap = graph::TopKOverlap(
      untrained.DenseAdjacency(), latent.adjacency, k);
  // Trained adjacency should be at least as aligned with the latent graph
  // (strictly better in practice; allow equality for robustness).
  EXPECT_GE(trained_overlap, untrained_overlap);
}

TEST(IntegrationTest, QuickDatasetsTrainableEndToEnd) {
  // Every registered dataset loads, windows, and supports one SAGDFN
  // training step without numerical issues.
  for (const auto& name : data::KnownDatasets()) {
    data::TimeSeries series =
        data::MakeDataset(name, data::DatasetScale::kQuick);
    // Shrink to keep the test fast.
    series = data::SliceNodes(series, std::min<int64_t>(
                                          series.num_nodes(), 16));
    data::ForecastDataset dataset(series, data::DefaultWindowSpec(name));
    core::SagdfnConfig config = SmallConfig(dataset);
    config.history = dataset.spec().history;
    config.horizon = dataset.spec().horizon;
    core::SagdfnModel model(config);
    core::TrainOptions options;
    options.epochs = 1;
    options.batch_size = 4;
    options.max_train_batches_per_epoch = 2;
    options.max_eval_batches = 1;
    core::Trainer trainer(&model, &dataset, options);
    core::TrainResult result = trainer.Train();
    EXPECT_EQ(result.epochs_run, 1) << name;
    EXPECT_FALSE(std::isnan(result.epoch_train_loss[0])) << name;
  }
}

TEST(IntegrationTest, SlimMemorySmallerThanDense) {
  // Measured proxy for Example 1/2: the slim adjacency pipeline
  // materializes far fewer floats than the dense N x N pipeline at the
  // same N.
  const int64_t n = 256;
  const int64_t m = 16;
  const int64_t d = 8;
  // Dense pairwise tensor: [N, N, 2d]; slim: [N, M, 2d].
  const int64_t dense_floats = n * n * 2 * d;
  const int64_t slim_floats = n * m * 2 * d;
  EXPECT_EQ(dense_floats / slim_floats, n / m);
}

TEST(IntegrationTest, SagdfnHandles10xNodesDenseCannot) {
  // Scaling harness: SAGDFN's per-forward float footprint grows linearly
  // in N while the pairwise-FFN baseline grows quadratically — verified
  // by constructing both models at two sizes and comparing parameter +
  // activation estimates via the memory model.
  core::MemoryParams p;
  p.num_nodes = 1000;
  const double slim1 =
      core::EstimateTrainingMemory(core::ModelFamily::kSagdfn, p)
          .total_bytes();
  const double dense1 =
      core::EstimateTrainingMemory(core::ModelFamily::kGts, p)
          .total_bytes();
  p.num_nodes = 10000;
  const double slim10 =
      core::EstimateTrainingMemory(core::ModelFamily::kSagdfn, p)
          .total_bytes();
  const double dense10 =
      core::EstimateTrainingMemory(core::ModelFamily::kGts, p)
          .total_bytes();
  EXPECT_LT(slim10 / slim1, 15.0);    // ~linear
  EXPECT_GT(dense10 / dense1, 50.0);  // ~quadratic
}

}  // namespace
}  // namespace sagdfn
