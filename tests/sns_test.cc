#include "core/sns.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SnsTest, CandidateRowsAreDistinctIds) {
  SignificantNeighborSampler sampler(50, 10, 8, 1);
  for (int64_t i = 0; i < 50; ++i) {
    const auto& row = sampler.candidates(i);
    ASSERT_EQ(row.size(), 10u);
    std::set<int64_t> unique(row.begin(), row.end());
    EXPECT_EQ(unique.size(), 10u);  // "each node id once per row"
    for (int64_t v : row) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(SnsTest, SampleReturnsMDistinctIndices) {
  SignificantNeighborSampler sampler(40, 12, 9, 2);
  utils::Rng rng(3);
  Tensor e = Tensor::Normal(Shape({40, 6}), rng);
  for (bool explore : {true, false}) {
    auto index_set = sampler.Sample(e, explore);
    EXPECT_EQ(index_set.size(), 12u);
    std::set<int64_t> unique(index_set.begin(), index_set.end());
    EXPECT_EQ(unique.size(), 12u);
  }
}

TEST(SnsTest, RanksByEmbeddingDistance) {
  // Embeddings on a line: candidates get sorted by distance to the row
  // node after one Sample() call.
  const int64_t n = 20;
  SignificantNeighborSampler sampler(n, 6, 4, 4);
  Tensor e = Tensor::Zeros(Shape({n, 1}));
  for (int64_t i = 0; i < n; ++i) e[i] = static_cast<float>(i);
  sampler.Sample(e, true);
  for (int64_t i = 0; i < n; ++i) {
    const auto& row = sampler.candidates(i);
    for (size_t j = 0; j + 1 < row.size(); ++j) {
      const float d1 = std::abs(static_cast<float>(row[j] - i));
      const float d2 = std::abs(static_cast<float>(row[j + 1] - i));
      EXPECT_LE(d1, d2) << "row " << i << " pos " << j;
    }
  }
}

TEST(SnsTest, GloballySignificantNodesSelected) {
  // Hub construction: nodes 0..4 sit at the origin; every other node i
  // sits alone on its own embedding axis at radius R, so non-hub nodes
  // are R*sqrt(2) apart but only R from the hubs — the hubs are strictly
  // the nearest neighbors of every node and should dominate the top-K
  // frequency ranking.
  const int64_t n = 60;
  const int64_t m = 10;
  const int64_t k = 5;
  SignificantNeighborSampler sampler(n, m, k, 5);
  Tensor e = Tensor::Zeros(Shape({n, n}));
  for (int64_t i = 5; i < n; ++i) {
    e.At({i, i}) = 10.0f;
  }
  // A few rounds so the candidate queues mix (exploration refreshes).
  std::vector<int64_t> index_set;
  for (int round = 0; round < 3; ++round) {
    index_set = sampler.Sample(e, true);
  }
  index_set = sampler.Sample(e, false);
  int hub_count = 0;
  for (int64_t v : index_set) {
    if (v < 5) ++hub_count;
  }
  // Not all hubs are guaranteed to be candidate-visible, but several must
  // be: each hub is in ~M/N of the rows' candidate sets and always ranks
  // first there.
  EXPECT_GE(hub_count, 3);
}

TEST(SnsTest, ExploreFillsFromOutsideTopK) {
  const int64_t n = 30;
  const int64_t m = 10;
  const int64_t k = 6;
  SignificantNeighborSampler sampler(n, m, k, 7);
  utils::Rng rng(8);
  Tensor e = Tensor::Normal(Shape({n, 4}), rng);
  auto with_explore = sampler.Sample(e, true);
  // First K entries are the frequency ranking; remaining M-K are drawn
  // from outside that set — so they must not duplicate the first K.
  std::set<int64_t> top(with_explore.begin(), with_explore.begin() + k);
  for (int64_t j = k; j < m; ++j) {
    EXPECT_EQ(top.count(with_explore[j]), 0u);
  }
}

TEST(SnsTest, ExplorationIsRandomAcrossCalls) {
  const int64_t n = 100;
  SignificantNeighborSampler sampler(n, 20, 10, 9);
  utils::Rng rng(10);
  Tensor e = Tensor::Normal(Shape({n, 3}), rng);
  auto a = sampler.Sample(e, true);
  auto b = sampler.Sample(e, true);
  // The exploration tails should differ with high probability.
  std::vector<int64_t> tail_a(a.begin() + 10, a.end());
  std::vector<int64_t> tail_b(b.begin() + 10, b.end());
  EXPECT_NE(tail_a, tail_b);
}

TEST(SnsTest, FrozenModeNeedsNoRandomFill) {
  const int64_t n = 25;
  SignificantNeighborSampler sampler(n, 8, 5, 11);
  utils::Rng rng(12);
  Tensor e = Tensor::Normal(Shape({n, 2}), rng);
  auto a = sampler.Sample(e, false);
  auto b = sampler.Sample(e, false);
  // Without exploration the draw is deterministic given embeddings.
  EXPECT_EQ(a, b);
}

TEST(SnsTest, InvalidConfigDies) {
  EXPECT_DEATH(SignificantNeighborSampler(10, 12, 5, 1), "m");
  EXPECT_DEATH(SignificantNeighborSampler(10, 5, 7, 1), "k");
}

// Property sweep over (N, M, K): the invariants |I| = M, distinctness,
// and id range hold.
struct SnsCase {
  int64_t n;
  int64_t m;
  int64_t k;
};

class SnsProperty : public ::testing::TestWithParam<SnsCase> {};

TEST_P(SnsProperty, IndexSetInvariants) {
  const auto& c = GetParam();
  SignificantNeighborSampler sampler(c.n, c.m, c.k, 13);
  utils::Rng rng(14);
  Tensor e = Tensor::Normal(Shape({c.n, 5}), rng);
  for (bool explore : {true, false}) {
    auto index_set = sampler.Sample(e, explore);
    EXPECT_EQ(static_cast<int64_t>(index_set.size()), c.m);
    std::set<int64_t> unique(index_set.begin(), index_set.end());
    EXPECT_EQ(static_cast<int64_t>(unique.size()), c.m);
    EXPECT_GE(*std::min_element(index_set.begin(), index_set.end()), 0);
    EXPECT_LT(*std::max_element(index_set.begin(), index_set.end()), c.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnsProperty,
    ::testing::Values(SnsCase{10, 10, 1}, SnsCase{16, 4, 4},
                      SnsCase{50, 25, 20}, SnsCase{128, 16, 12},
                      SnsCase{7, 3, 2}));

}  // namespace
}  // namespace sagdfn::core
