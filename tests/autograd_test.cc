#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::autograd {
namespace {

using tensor::AllClose;
using tensor::Shape;
using tensor::Tensor;

Tensor T(std::vector<float> v, std::initializer_list<int64_t> dims) {
  return Tensor::FromVector(std::move(v), Shape(dims));
}

TEST(AutogradTest, AddBackward) {
  Variable a(T({1, 2}, {2}), true);
  Variable b(T({3, 4}, {2}), true);
  Variable loss = SumAll(Add(a, b));
  loss.Backward();
  EXPECT_TRUE(AllClose(a.grad(), Tensor::Ones(Shape({2}))));
  EXPECT_TRUE(AllClose(b.grad(), Tensor::Ones(Shape({2}))));
}

TEST(AutogradTest, MulBackwardUsesOtherValue) {
  Variable a(T({2, 3}, {2}), true);
  Variable b(T({5, 7}, {2}), true);
  SumAll(Mul(a, b)).Backward();
  EXPECT_TRUE(AllClose(a.grad(), T({5, 7}, {2})));
  EXPECT_TRUE(AllClose(b.grad(), T({2, 3}, {2})));
}

TEST(AutogradTest, BroadcastBackwardReduces) {
  Variable a(T({1, 2, 3, 4, 5, 6}, {2, 3}), true);
  Variable b(T({10, 20, 30}, {3}), true);
  SumAll(Add(a, b)).Backward();
  EXPECT_EQ(b.grad().shape(), Shape({3}));
  EXPECT_TRUE(AllClose(b.grad(), T({2, 2, 2}, {3})));
}

TEST(AutogradTest, ChainRuleThroughReuse) {
  // y = x * x => dy/dx = 2x (same variable used twice).
  Variable x(T({3}, {1}), true);
  SumAll(Mul(x, x)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // z = (x + x) + (x * x); dz/dx = 2 + 2x = 8 at x=3.
  Variable x(T({3}, {1}), true);
  Variable z = Add(Add(x, x), Mul(x, x));
  SumAll(z).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
}

TEST(AutogradTest, MatMulBackward) {
  Variable a(T({1, 2, 3, 4}, {2, 2}), true);
  Variable b(T({1, 0, 0, 1}, {2, 2}), true);
  SumAll(MatMul(a, b)).Backward();
  // d/dA sum(AB) = ones @ B^T.
  EXPECT_TRUE(AllClose(a.grad(), T({1, 1, 1, 1}, {2, 2})));
  // d/dB sum(AB) = A^T @ ones.
  EXPECT_TRUE(AllClose(b.grad(), T({4, 4, 6, 6}, {2, 2})));
}

TEST(AutogradTest, NoGradWhenNotRequired) {
  Variable a(T({1, 2}, {2}), false);
  Variable b(T({3, 4}, {2}), true);
  Variable out = Mul(a, b);
  SumAll(out).Backward();
  EXPECT_TRUE(AllClose(a.grad(), Tensor::Zeros(Shape({2}))));
  EXPECT_TRUE(AllClose(b.grad(), T({1, 2}, {2})));
}

TEST(AutogradTest, NoGradGuardDisablesTape) {
  Variable a(T({1, 2}, {2}), true);
  Variable out;
  {
    NoGradGuard guard;
    out = Mul(a, a);
  }
  EXPECT_FALSE(out.requires_grad());
}

TEST(AutogradTest, DetachStopsGradient) {
  Variable a(T({2}, {1}), true);
  Variable d = Mul(a, a).Detach();
  Variable out = Mul(d, a);  // only the direct factor contributes
  SumAll(out).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);  // d = 4 constant, d*(da)=4
}

TEST(AutogradTest, ZeroGradClears) {
  Variable a(T({1}, {1}), true);
  SumAll(Mul(a, a)).Backward();
  EXPECT_NE(a.grad()[0], 0.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Variable a(T({1}, {1}), true);
  SumAll(Mul(a, a)).Backward();
  const float g1 = a.grad()[0];
  SumAll(Mul(a, a)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2 * g1);
}

TEST(AutogradTest, SliceConcatRoundTrip) {
  Variable a(T({1, 2, 3, 4}, {4}), true);
  Variable left = Slice(a, 0, 0, 2);
  Variable right = Slice(a, 0, 2, 4);
  Variable back = Concat({right, left}, 0);  // swapped halves
  SumAll(Mul(back, back)).Backward();
  // d/dx sum(x^2) = 2x regardless of the permutation.
  EXPECT_TRUE(AllClose(a.grad(), T({2, 4, 6, 8}, {4})));
}

TEST(AutogradTest, IndexSelectBackwardScatters) {
  Variable a(T({1, 2, 3}, {3}), true);
  Variable s = IndexSelect(a, 0, {0, 0, 2});
  SumAll(s).Backward();
  EXPECT_TRUE(AllClose(a.grad(), T({2, 0, 1}, {3})));
}

TEST(AutogradTest, SoftmaxGradientSumsToZero) {
  utils::Rng rng(4);
  Variable a(Tensor::Normal(Shape({5}), rng), true);
  Variable s = Softmax(a, 0);
  // d/dz sum_i w_i p_i has zero sum (softmax Jacobian rows sum to 0).
  Variable w(Tensor::Normal(Shape({5}), rng), false);
  SumAll(Mul(s, w)).Backward();
  float total = 0.0f;
  for (int64_t i = 0; i < 5; ++i) total += a.grad()[i];
  EXPECT_NEAR(total, 0.0f, 1e-5f);
}

TEST(AutogradTest, L1LossValueAndGrad) {
  Variable pred(T({1, 4}, {2}), true);
  Variable target(T({2, 2}, {2}), false);
  Variable loss = L1Loss(pred, target);
  EXPECT_FLOAT_EQ(loss.value().Item(), 1.5f);  // (1 + 2) / 2
  loss.Backward();
  EXPECT_TRUE(AllClose(pred.grad(), T({-0.5f, 0.5f}, {2})));
}

TEST(AutogradTest, MseLossValue) {
  Variable pred(T({1, 4}, {2}), true);
  Variable target(T({2, 2}, {2}), false);
  EXPECT_FLOAT_EQ(MseLoss(pred, target).value().Item(), 2.5f);  // (1+4)/2
}

TEST(AutogradTest, MaskedL1IgnoresMaskedEntries) {
  Variable pred(T({1, 100}, {2}), true);
  Variable target(T({2, 0}, {2}), false);
  tensor::Tensor mask = T({1, 0}, {2});
  Variable loss = MaskedL1Loss(pred, target, mask);
  EXPECT_FLOAT_EQ(loss.value().Item(), 1.0f);
  loss.Backward();
  EXPECT_FLOAT_EQ(pred.grad()[1], 0.0f);
}

TEST(AutogradTest, ExpandBackwardReduces) {
  Variable a(T({1, 2}, {2}), true);
  Variable e = Expand(a, Shape({3, 2}));
  EXPECT_EQ(e.shape(), Shape({3, 2}));
  SumAll(e).Backward();
  EXPECT_TRUE(AllClose(a.grad(), T({3, 3}, {2})));
}

TEST(AutogradTest, MaxBackwardRoutesToArgmax) {
  Variable a(T({1, 5, 3}, {3}), true);
  SumAll(Max(a, 0)).Backward();
  EXPECT_TRUE(AllClose(a.grad(), T({0, 1, 0}, {3})));
}

TEST(AutogradTest, TransposeReshapeBackward) {
  Variable a(T({1, 2, 3, 4, 5, 6}, {2, 3}), true);
  Variable t = Transpose(a, 0, 1);           // [3, 2]
  Variable r = Reshape(t, {6});
  Variable w(T({1, 2, 3, 4, 5, 6}, {6}), false);
  SumAll(Mul(r, w)).Backward();
  // r = [a00,a10,a01,a11,a02,a12]; grads land back transposed.
  EXPECT_TRUE(AllClose(a.grad(), T({1, 3, 5, 2, 4, 6}, {2, 3})));
}

TEST(AutogradTest, StackBackwardSplits) {
  Variable a(T({1, 2}, {2}), true);
  Variable b(T({3, 4}, {2}), true);
  Variable s = Stack({a, b}, 0);  // [2, 2]
  Variable w(T({1, 10, 100, 1000}, {2, 2}), false);
  SumAll(Mul(s, w)).Backward();
  EXPECT_TRUE(AllClose(a.grad(), T({1, 10}, {2})));
  EXPECT_TRUE(AllClose(b.grad(), T({100, 1000}, {2})));
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Variable a(T({1, 2}, {2}), true);
  EXPECT_DEATH(Add(a, a).Backward(), "scalar");
}

TEST(AutogradTest, SetRequiresGradOnNonLeafDies) {
  Variable a(T({1}, {1}), true);
  Variable b = Mul(a, a);
  EXPECT_DEATH(b.set_requires_grad(false), "non-leaf");
}

}  // namespace
}  // namespace sagdfn::autograd
