#include <fstream>
#include "nn/serialization.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "nn/mlp.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "serve/registry.h"
#include "tensor/tensor_ops.h"
#include "utils/fault.h"
#include "utils/rng.h"

namespace sagdfn::nn {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, MlpRoundTrip) {
  utils::Rng rng(1);
  Mlp original({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  utils::Rng rng2(99);  // different init
  Mlp restored({3, 5, 2}, Activation::kRelu, rng2);
  ASSERT_TRUE(LoadModule(&restored, path).ok());

  // Identical outputs after loading.
  Tensor x = Tensor::Uniform(Shape({4, 3}), rng);
  Tensor y1 = original.Forward(ag::Variable(x)).value();
  Tensor y2 = restored.Forward(ag::Variable(x)).value();
  EXPECT_TRUE(tensor::AllClose(y1, y2));
  std::remove(path.c_str());
}

TEST(SerializationTest, SagdfnModelRoundTrip) {
  core::SagdfnConfig config;
  config.num_nodes = 8;
  config.embedding_dim = 4;
  config.m = 4;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.history = 4;
  config.horizon = 2;
  core::SagdfnModel original(config);
  const std::string path = TempPath("sagdfn.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  config.seed = 1234;  // different init seed
  core::SagdfnModel restored(config);
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  EXPECT_TRUE(tensor::AllClose(restored.embeddings().value(),
                               original.embeddings().value()));
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  utils::Rng rng(2);
  Mlp small({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModule(small, path).ok());
  Mlp bigger({3, 8, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&bigger, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileRejected) {
  utils::Rng rng(3);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, "/nonexistent/model.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kNotFound);
}

TEST(SerializationTest, CorruptFileRejected) {
  const std::string path = TempPath("corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  utils::Rng rng(4);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, ParameterCountMismatchRejected) {
  utils::Rng rng(5);
  Mlp two_layers({2, 3, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveModule(two_layers, path).ok());
  Mlp one_layer({2, 2}, Activation::kRelu, rng);
  EXPECT_FALSE(LoadModule(&one_layer, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, CheckpointMetaRoundTrip) {
  utils::Rng rng(6);
  Checkpoint original;
  original.tensors.emplace_back("weights",
                                Tensor::Uniform(Shape({3, 4}), rng));
  original.meta.emplace_back("iteration", std::vector<uint64_t>{42});
  original.meta.emplace_back("rng", rng.SerializeState());
  const std::string path = TempPath("meta.ckpt");
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());

  Checkpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(&loaded, path).ok());
  const Tensor* w = loaded.FindTensor("weights");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->shape(), original.tensors[0].second.shape());
  EXPECT_EQ(std::memcmp(w->data(), original.tensors[0].second.data(),
                        w->size() * sizeof(float)),
            0);
  const std::vector<uint64_t>* iter = loaded.FindMeta("iteration");
  ASSERT_NE(iter, nullptr);
  EXPECT_EQ(*iter, std::vector<uint64_t>{42});
  const std::vector<uint64_t>* rng_words = loaded.FindMeta("rng");
  ASSERT_NE(rng_words, nullptr);
  EXPECT_EQ(*rng_words, original.meta[1].second);
  EXPECT_EQ(loaded.FindTensor("missing"), nullptr);
  EXPECT_EQ(loaded.FindMeta("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  utils::Rng rng(7);
  Mlp mlp({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());

  // Chop off the tail; every truncation point must be detected.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    Mlp target({3, 5, 2}, Activation::kRelu, rng);
    utils::Status status = LoadModule(&target, path);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, TrailingBytesRejected) {
  utils::Rng rng(8);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("padded.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicRejected) {
  utils::Rng rng(9);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("badmagic.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.put('X');  // corrupt the first magic byte
  }
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, UnwritableDirectoryRejected) {
  utils::Rng rng(10);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status =
      SaveModule(mlp, "/nonexistent-dir/model.ckpt");
  EXPECT_FALSE(status.ok());
}

TEST(SerializationTest, InjectedTruncationNeverPublishes) {
  utils::Rng rng(11);
  Mlp mlp({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  Checkpoint good;
  ASSERT_TRUE(LoadCheckpoint(&good, path).ok());

  // The truncated write must fail verification, leave the previous
  // checkpoint byte-identical, and clean up its temp file.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("truncate_ckpt").ok());
  utils::Status status = SaveModule(mlp, path);
  utils::FaultInjector::Global().Reset();
  EXPECT_FALSE(status.ok());
  Checkpoint still_good;
  EXPECT_TRUE(LoadCheckpoint(&still_good, path).ok());
  EXPECT_EQ(still_good.tensors.size(), good.tensors.size());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SerializationTest, InjectedIoFailureReported) {
  utils::Rng rng(12);
  Mlp mlp({2, 3}, Activation::kRelu, rng);
  const std::string path = TempPath("iofail.ckpt");
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@save=1").ok());
  utils::Status save_status = SaveModule(mlp, path);
  EXPECT_FALSE(save_status.ok());

  ASSERT_TRUE(SaveModule(mlp, path).ok());  // 2nd save succeeds
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@load=1").ok());
  Checkpoint ckpt;
  EXPECT_FALSE(LoadCheckpoint(&ckpt, path).ok());
  EXPECT_TRUE(LoadCheckpoint(&ckpt, path).ok());  // 2nd load succeeds
  utils::FaultInjector::Global().Reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Deterministic corruption corpus: whatever bytes arrive, LoadModule must
// either succeed or fail with a clean Status — never crash, never leave the
// target module partially populated (the loader validates the whole plan
// before copying a single tensor).
// ---------------------------------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<Tensor> SnapshotParams(Module& module) {
  std::vector<Tensor> snapshot;
  for (auto& [name, param] : module.NamedParameters()) {
    snapshot.push_back(param.value().Clone());
  }
  return snapshot;
}

bool ParamsMemEqual(Module& module, const std::vector<Tensor>& snapshot) {
  auto params = module.NamedParameters();
  if (params.size() != snapshot.size()) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& value = params[i].second.value();
    if (value.size() != snapshot[i].size() ||
        std::memcmp(value.data(), snapshot[i].data(),
                    value.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(SerializationFuzzTest, BitFlipsNeverCrashOrPartiallyPopulate) {
  utils::Rng rng(41);
  Mlp source({4, 6, 3}, Activation::kRelu, rng);
  const std::string path = TempPath("fuzz_bitflip.ckpt");
  ASSERT_TRUE(SaveModule(source, path).ok());
  const std::string pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 64u);

  utils::Rng fuzz(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = pristine;
    const auto pos = static_cast<size_t>(
        fuzz.UniformInt(static_cast<int64_t>(bytes.size())));
    const int bit = static_cast<int>(fuzz.UniformInt(8));
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << bit));
    WriteFileBytes(path, bytes);

    Mlp target({4, 6, 3}, Activation::kRelu, fuzz);
    const std::vector<Tensor> before = SnapshotParams(target);
    utils::Status status = LoadModule(&target, path);
    if (status.ok()) {
      // Flip landed in a tensor payload (or was a no-op): full load.
      continue;
    }
    EXPECT_TRUE(ParamsMemEqual(target, before))
        << "failed load mutated the module (trial " << trial << ", byte "
        << pos << ", bit " << bit << "): " << status.ToString();
  }
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, LengthFieldCorruptionRejectedCleanly) {
  utils::Rng rng(42);
  Mlp source({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("fuzz_length.ckpt");
  ASSERT_TRUE(SaveModule(source, path).ok());
  const std::string pristine = ReadFileBytes(path);

  // Stomp every u32-aligned word in the file with values chosen to abuse
  // whichever count/length/dim field lives there: huge (multi-TB
  // allocations if trusted), off-by-one, and zero. The loader's bounds
  // checks must turn each into a clean error or an unchanged full load.
  const std::vector<uint64_t> poisons = {0xFFFFFFFFFFFFFFFFull,
                                         0x7FFFFFFFFFFFFFFFull,
                                         0x0000000100000001ull, 1ull, 0ull};
  int rejected = 0;
  for (size_t pos = 0; pos + sizeof(uint64_t) <= pristine.size(); pos += 4) {
    for (uint64_t poison : poisons) {
      std::string bytes = pristine;
      std::memcpy(&bytes[pos], &poison, sizeof(poison));
      WriteFileBytes(path, bytes);
      Mlp target({3, 5, 2}, Activation::kRelu, rng);
      const std::vector<Tensor> before = SnapshotParams(target);
      utils::Status status = LoadModule(&target, path);
      if (!status.ok()) {
        ++rejected;
        EXPECT_TRUE(ParamsMemEqual(target, before))
            << "failed load mutated the module (byte " << pos << ", poison 0x"
            << std::hex << poison << ")";
      }
    }
  }
  // Sanity: the corpus actually exercised the reject paths.
  EXPECT_GT(rejected, 0);
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, DuplicatedTensorRecordRejected) {
  utils::Rng rng(43);
  Mlp source({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("fuzz_dup.ckpt");
  ASSERT_TRUE(SaveModule(source, path).ok());
  Checkpoint ckpt;
  ASSERT_TRUE(LoadCheckpoint(&ckpt, path).ok());
  ASSERT_FALSE(ckpt.tensors.empty());
  // Duplicate the first record; the loader must refuse the whole file
  // rather than silently let the later copy win.
  ckpt.tensors.push_back(ckpt.tensors.front());
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());

  Mlp target({3, 4, 2}, Activation::kRelu, rng);
  const std::vector<Tensor> before = SnapshotParams(target);
  utils::Status status = LoadModule(&target, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  EXPECT_TRUE(ParamsMemEqual(target, before));
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, ReorderedTensorRecordsStillLoadExactly) {
  utils::Rng rng(44);
  Mlp source({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("fuzz_reorder.ckpt");
  ASSERT_TRUE(SaveModule(source, path).ok());
  Checkpoint ckpt;
  ASSERT_TRUE(LoadCheckpoint(&ckpt, path).ok());
  ASSERT_GT(ckpt.tensors.size(), 1u);
  // The loader matches records by name, so order must not matter.
  std::reverse(ckpt.tensors.begin(), ckpt.tensors.end());
  ASSERT_TRUE(SaveCheckpoint(ckpt, path).ok());

  utils::Rng rng2(4545);
  Mlp target({3, 4, 2}, Activation::kRelu, rng2);
  ASSERT_TRUE(LoadModule(&target, path).ok());
  EXPECT_TRUE(ParamsMemEqual(target, SnapshotParams(source)));
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, TruncationSweepNeverCrashes) {
  utils::Rng rng(45);
  Mlp source({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("fuzz_trunc.ckpt");
  ASSERT_TRUE(SaveModule(source, path).ok());
  const std::string pristine = ReadFileBytes(path);

  // Every prefix length (byte granularity up to 96, then every 7th) must
  // be rejected without touching the target.
  for (size_t keep = 0; keep < pristine.size();
       keep += (keep < 96 ? 1 : 7)) {
    WriteFileBytes(path, pristine.substr(0, keep));
    Mlp target({3, 5, 2}, Activation::kRelu, rng);
    const std::vector<Tensor> before = SnapshotParams(target);
    utils::Status status = LoadModule(&target, path);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_TRUE(ParamsMemEqual(target, before)) << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, RegistryGateRejectsCorruptCandidates) {
  // End-to-end corrupt-candidate corpus through the serving registry:
  // bit-flipped and truncated checkpoints published to a live engine must
  // all be turned away by the quality gate without the live FrozenModel
  // pointer ever changing — the serve path inherits the loader's
  // fail-closed contract.
  core::SagdfnConfig config;
  config.num_nodes = 8;
  config.embedding_dim = 4;
  config.m = 4;
  config.k = 2;
  config.hidden_dim = 5;
  config.heads = 1;
  config.ffn_hidden = 4;
  config.diffusion_steps = 1;
  config.history = 3;
  config.horizon = 2;
  config.seed = 7;
  const std::string path = TempPath("fuzz_registry.ckpt");
  {
    core::SagdfnModel candidate(config);
    ASSERT_TRUE(SaveModule(candidate, path).ok());
  }
  const std::string pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 64u);

  auto live = std::shared_ptr<const serve::FrozenModel>(
      serve::FrozenModel::Freeze(
          std::make_unique<core::SagdfnModel>(config)));
  serve::InferenceEngine engine(live, serve::EngineOptions{});
  serve::ModelRegistry registry(&engine, serve::RegistryOptions{});

  utils::Rng fuzz(5678);
  int64_t rejected = 0;
  // Bit flips in the structural prefix (header, meta, tensor records all
  // live early in the file; a flip deep in a payload would load fine and
  // legitimately publish).
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    const auto pos = static_cast<size_t>(fuzz.UniformInt(64));
    const int bit = static_cast<int>(fuzz.UniformInt(8));
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << bit));
    if (bytes == pristine) continue;
    WriteFileBytes(path, bytes);
    utils::Status status = registry.Publish(path);
    if (!status.ok()) ++rejected;
    // A flip the loader cannot distinguish from a valid file may publish;
    // either way the engine must keep serving a valid snapshot.
    ASSERT_NE(engine.model_snapshot(), nullptr);
  }
  // Truncation sweep: every strict prefix must be rejected, and the live
  // pointer (re-pinned, since a payload-only flip above may have
  // legitimately published) must never move again.
  const serve::FrozenModel* pinned = engine.model_snapshot().get();
  for (size_t keep = 0; keep < pristine.size(); keep += 17) {
    WriteFileBytes(path, pristine.substr(0, keep));
    utils::Status status = registry.Publish(path);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    ++rejected;
    EXPECT_EQ(engine.model_snapshot().get(), pinned)
        << "truncated candidate (keep=" << keep << ") moved the live model";
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(registry.stats().rejected, rejected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sagdfn::nn
