#include <fstream>
#include "nn/serialization.h"

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "nn/mlp.h"
#include "tensor/tensor_ops.h"
#include "utils/fault.h"
#include "utils/rng.h"

namespace sagdfn::nn {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, MlpRoundTrip) {
  utils::Rng rng(1);
  Mlp original({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  utils::Rng rng2(99);  // different init
  Mlp restored({3, 5, 2}, Activation::kRelu, rng2);
  ASSERT_TRUE(LoadModule(&restored, path).ok());

  // Identical outputs after loading.
  Tensor x = Tensor::Uniform(Shape({4, 3}), rng);
  Tensor y1 = original.Forward(ag::Variable(x)).value();
  Tensor y2 = restored.Forward(ag::Variable(x)).value();
  EXPECT_TRUE(tensor::AllClose(y1, y2));
  std::remove(path.c_str());
}

TEST(SerializationTest, SagdfnModelRoundTrip) {
  core::SagdfnConfig config;
  config.num_nodes = 8;
  config.embedding_dim = 4;
  config.m = 4;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.history = 4;
  config.horizon = 2;
  core::SagdfnModel original(config);
  const std::string path = TempPath("sagdfn.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  config.seed = 1234;  // different init seed
  core::SagdfnModel restored(config);
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  EXPECT_TRUE(tensor::AllClose(restored.embeddings().value(),
                               original.embeddings().value()));
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  utils::Rng rng(2);
  Mlp small({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModule(small, path).ok());
  Mlp bigger({3, 8, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&bigger, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileRejected) {
  utils::Rng rng(3);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, "/nonexistent/model.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kNotFound);
}

TEST(SerializationTest, CorruptFileRejected) {
  const std::string path = TempPath("corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  utils::Rng rng(4);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, ParameterCountMismatchRejected) {
  utils::Rng rng(5);
  Mlp two_layers({2, 3, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveModule(two_layers, path).ok());
  Mlp one_layer({2, 2}, Activation::kRelu, rng);
  EXPECT_FALSE(LoadModule(&one_layer, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, CheckpointMetaRoundTrip) {
  utils::Rng rng(6);
  Checkpoint original;
  original.tensors.emplace_back("weights",
                                Tensor::Uniform(Shape({3, 4}), rng));
  original.meta.emplace_back("iteration", std::vector<uint64_t>{42});
  original.meta.emplace_back("rng", rng.SerializeState());
  const std::string path = TempPath("meta.ckpt");
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());

  Checkpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(&loaded, path).ok());
  const Tensor* w = loaded.FindTensor("weights");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->shape(), original.tensors[0].second.shape());
  EXPECT_EQ(std::memcmp(w->data(), original.tensors[0].second.data(),
                        w->size() * sizeof(float)),
            0);
  const std::vector<uint64_t>* iter = loaded.FindMeta("iteration");
  ASSERT_NE(iter, nullptr);
  EXPECT_EQ(*iter, std::vector<uint64_t>{42});
  const std::vector<uint64_t>* rng_words = loaded.FindMeta("rng");
  ASSERT_NE(rng_words, nullptr);
  EXPECT_EQ(*rng_words, original.meta[1].second);
  EXPECT_EQ(loaded.FindTensor("missing"), nullptr);
  EXPECT_EQ(loaded.FindMeta("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  utils::Rng rng(7);
  Mlp mlp({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());

  // Chop off the tail; every truncation point must be detected.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{10}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    Mlp target({3, 5, 2}, Activation::kRelu, rng);
    utils::Status status = LoadModule(&target, path);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, TrailingBytesRejected) {
  utils::Rng rng(8);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("padded.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicRejected) {
  utils::Rng rng(9);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("badmagic.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.put('X');  // corrupt the first magic byte
  }
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, UnwritableDirectoryRejected) {
  utils::Rng rng(10);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status =
      SaveModule(mlp, "/nonexistent-dir/model.ckpt");
  EXPECT_FALSE(status.ok());
}

TEST(SerializationTest, InjectedTruncationNeverPublishes) {
  utils::Rng rng(11);
  Mlp mlp({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("atomic.ckpt");
  ASSERT_TRUE(SaveModule(mlp, path).ok());
  Checkpoint good;
  ASSERT_TRUE(LoadCheckpoint(&good, path).ok());

  // The truncated write must fail verification, leave the previous
  // checkpoint byte-identical, and clean up its temp file.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("truncate_ckpt").ok());
  utils::Status status = SaveModule(mlp, path);
  utils::FaultInjector::Global().Reset();
  EXPECT_FALSE(status.ok());
  Checkpoint still_good;
  EXPECT_TRUE(LoadCheckpoint(&still_good, path).ok());
  EXPECT_EQ(still_good.tensors.size(), good.tensors.size());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SerializationTest, InjectedIoFailureReported) {
  utils::Rng rng(12);
  Mlp mlp({2, 3}, Activation::kRelu, rng);
  const std::string path = TempPath("iofail.ckpt");
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@save=1").ok());
  utils::Status save_status = SaveModule(mlp, path);
  EXPECT_FALSE(save_status.ok());

  ASSERT_TRUE(SaveModule(mlp, path).ok());  // 2nd save succeeds
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@load=1").ok());
  Checkpoint ckpt;
  EXPECT_FALSE(LoadCheckpoint(&ckpt, path).ok());
  EXPECT_TRUE(LoadCheckpoint(&ckpt, path).ok());  // 2nd load succeeds
  utils::FaultInjector::Global().Reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sagdfn::nn
