#include <fstream>
#include "nn/serialization.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "nn/mlp.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::nn {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, MlpRoundTrip) {
  utils::Rng rng(1);
  Mlp original({3, 5, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  utils::Rng rng2(99);  // different init
  Mlp restored({3, 5, 2}, Activation::kRelu, rng2);
  ASSERT_TRUE(LoadModule(&restored, path).ok());

  // Identical outputs after loading.
  Tensor x = Tensor::Uniform(Shape({4, 3}), rng);
  Tensor y1 = original.Forward(ag::Variable(x)).value();
  Tensor y2 = restored.Forward(ag::Variable(x)).value();
  EXPECT_TRUE(tensor::AllClose(y1, y2));
  std::remove(path.c_str());
}

TEST(SerializationTest, SagdfnModelRoundTrip) {
  core::SagdfnConfig config;
  config.num_nodes = 8;
  config.embedding_dim = 4;
  config.m = 4;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.history = 4;
  config.horizon = 2;
  core::SagdfnModel original(config);
  const std::string path = TempPath("sagdfn.ckpt");
  ASSERT_TRUE(SaveModule(original, path).ok());

  config.seed = 1234;  // different init seed
  core::SagdfnModel restored(config);
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  EXPECT_TRUE(tensor::AllClose(restored.embeddings().value(),
                               original.embeddings().value()));
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  utils::Rng rng(2);
  Mlp small({3, 4, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModule(small, path).ok());
  Mlp bigger({3, 8, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&bigger, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileRejected) {
  utils::Rng rng(3);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, "/nonexistent/model.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kNotFound);
}

TEST(SerializationTest, CorruptFileRejected) {
  const std::string path = TempPath("corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  utils::Rng rng(4);
  Mlp mlp({2, 2}, Activation::kRelu, rng);
  utils::Status status = LoadModule(&mlp, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, ParameterCountMismatchRejected) {
  utils::Rng rng(5);
  Mlp two_layers({2, 3, 2}, Activation::kRelu, rng);
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveModule(two_layers, path).ok());
  Mlp one_layer({2, 2}, Activation::kRelu, rng);
  EXPECT_FALSE(LoadModule(&one_layer, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sagdfn::nn
