#include "tensor/tensor_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "utils/rng.h"

namespace sagdfn::tensor {
namespace {

Tensor T(std::vector<float> v, std::initializer_list<int64_t> dims) {
  return Tensor::FromVector(std::move(v), Shape(dims));
}

TEST(TensorOpsTest, AddSameShape) {
  Tensor c = Add(T({1, 2, 3}, {3}), T({10, 20, 30}, {3}));
  EXPECT_TRUE(AllClose(c, T({11, 22, 33}, {3})));
}

TEST(TensorOpsTest, BroadcastRowVector) {
  // [2,3] + [3]
  Tensor c = Add(T({1, 2, 3, 4, 5, 6}, {2, 3}), T({10, 20, 30}, {3}));
  EXPECT_TRUE(AllClose(c, T({11, 22, 33, 14, 25, 36}, {2, 3})));
}

TEST(TensorOpsTest, BroadcastColumnVector) {
  // [2,3] * [2,1]
  Tensor c = Mul(T({1, 2, 3, 4, 5, 6}, {2, 3}), T({2, 10}, {2, 1}));
  EXPECT_TRUE(AllClose(c, T({2, 4, 6, 40, 50, 60}, {2, 3})));
}

TEST(TensorOpsTest, BroadcastBothDirections) {
  // [2,1] + [1,3] -> [2,3]
  Tensor c = Add(T({1, 10}, {2, 1}), T({1, 2, 3}, {1, 3}));
  EXPECT_TRUE(AllClose(c, T({2, 3, 4, 11, 12, 13}, {2, 3})));
}

TEST(TensorOpsTest, ScalarBroadcast) {
  Tensor c = Mul(T({1, 2, 3}, {3}), Tensor::Scalar(4.0f));
  EXPECT_TRUE(AllClose(c, T({4, 8, 12}, {3})));
}

TEST(TensorOpsTest, SubDivMaxMin) {
  Tensor a = T({4, 9, 16}, {3});
  Tensor b = T({2, 3, 4}, {3});
  EXPECT_TRUE(AllClose(Sub(a, b), T({2, 6, 12}, {3})));
  EXPECT_TRUE(AllClose(Div(a, b), T({2, 3, 4}, {3})));
  EXPECT_TRUE(AllClose(Maximum(a, T({5, 5, 5}, {3})), T({5, 9, 16}, {3})));
  EXPECT_TRUE(AllClose(Minimum(a, T({5, 5, 5}, {3})), T({4, 5, 5}, {3})));
}

TEST(TensorOpsTest, UnaryOps) {
  Tensor a = T({-1, 0, 4}, {3});
  EXPECT_TRUE(AllClose(Neg(a), T({1, 0, -4}, {3})));
  EXPECT_TRUE(AllClose(Abs(a), T({1, 0, 4}, {3})));
  EXPECT_TRUE(AllClose(Sign(a), T({-1, 0, 1}, {3})));
  EXPECT_TRUE(AllClose(Relu(a), T({0, 0, 4}, {3})));
  EXPECT_TRUE(AllClose(Sqrt(T({4, 9}, {2})), T({2, 3}, {2})));
  EXPECT_TRUE(AllClose(Clamp(a, -0.5f, 2.0f), T({-0.5f, 0, 2}, {3})));
}

TEST(TensorOpsTest, SigmoidStability) {
  Tensor big = T({100.0f, -100.0f}, {2});
  Tensor s = Sigmoid(big);
  EXPECT_NEAR(s[0], 1.0f, 1e-6f);
  EXPECT_NEAR(s[1], 0.0f, 1e-6f);
  EXPECT_FALSE(HasNonFinite(s));
}

TEST(TensorOpsTest, MatMulSmall) {
  Tensor a = T({1, 2, 3, 4}, {2, 2});
  Tensor b = T({5, 6, 7, 8}, {2, 2});
  EXPECT_TRUE(AllClose(MatMul(a, b), T({19, 22, 43, 50}, {2, 2})));
}

TEST(TensorOpsTest, MatMulIdentity) {
  utils::Rng rng(3);
  Tensor a = Tensor::Uniform(Shape({5, 5}), rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(5)), a));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Eye(5), a), a));
}

TEST(TensorOpsTest, MatMulRectangular) {
  Tensor a = T({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = T({1, 0, 0, 1, 1, 1}, {3, 2});
  EXPECT_TRUE(AllClose(MatMul(a, b), T({4, 5, 10, 11}, {2, 2})));
}

TEST(TensorOpsTest, BatchedMatMul3x3) {
  // Two batches of [1,2]x[2,1].
  Tensor a = T({1, 2, 3, 4}, {2, 1, 2});
  Tensor b = T({1, 1, 2, 2}, {2, 2, 1});
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 14.0f);
}

TEST(TensorOpsTest, BatchedMatMulBroadcastRhs) {
  Tensor a = T({1, 2, 3, 4}, {2, 1, 2});
  Tensor b = T({1, 1}, {2, 1});
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 7.0f);
}

TEST(TensorOpsTest, BatchedMatMulBroadcastLhs) {
  Tensor a = T({1, 1}, {1, 2});        // [1, 2]
  Tensor b = T({1, 2, 3, 4}, {2, 2, 1});  // [2, 2, 1]
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 7.0f);
}

TEST(TensorOpsTest, SumMeanMaxAlongAxis) {
  Tensor a = T({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_TRUE(AllClose(Sum(a, 0), T({5, 7, 9}, {3})));
  EXPECT_TRUE(AllClose(Sum(a, 1), T({6, 15}, {2})));
  EXPECT_TRUE(AllClose(Sum(a, 1, true), T({6, 15}, {2, 1})));
  EXPECT_TRUE(AllClose(Mean(a, 0), T({2.5f, 3.5f, 4.5f}, {3})));
  EXPECT_TRUE(AllClose(Max(a, 1), T({3, 6}, {2})));
  EXPECT_TRUE(AllClose(ArgMax(a, 1), T({2, 2}, {2})));
}

TEST(TensorOpsTest, FullReductions) {
  Tensor a = T({1, 2, 3, 4}, {2, 2});
  EXPECT_FLOAT_EQ(SumAll(a).Item(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).Item(), 2.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
}

TEST(TensorOpsTest, ReduceToIsBroadcastAdjoint) {
  // Sum of broadcast([2,1] -> [2,3]) gradient back to [2,1].
  Tensor g = T({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor r = ReduceTo(g, Shape({2, 1}));
  EXPECT_TRUE(AllClose(r, T({6, 15}, {2, 1})));
  Tensor r2 = ReduceTo(g, Shape({3}));
  EXPECT_TRUE(AllClose(r2, T({5, 7, 9}, {3})));
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor a = T({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_TRUE(AllClose(t, T({1, 4, 2, 5, 3, 6}, {3, 2})));
}

TEST(TensorOpsTest, Transpose3DMiddleAxes) {
  Tensor a = Tensor::Arange(24).Reshape({2, 3, 4});
  Tensor t = Transpose(a, 1, 2);
  EXPECT_EQ(t.shape(), Shape({2, 4, 3}));
  EXPECT_FLOAT_EQ(t.At({0, 0, 1}), a.At({0, 1, 0}));
  EXPECT_FLOAT_EQ(t.At({1, 3, 2}), a.At({1, 2, 3}));
  // Double transpose is identity.
  EXPECT_TRUE(AllClose(Transpose(t, 1, 2), a));
}

TEST(TensorOpsTest, ConcatAxis0And1) {
  Tensor a = T({1, 2}, {1, 2});
  Tensor b = T({3, 4}, {1, 2});
  EXPECT_TRUE(AllClose(Concat({a, b}, 0), T({1, 2, 3, 4}, {2, 2})));
  EXPECT_TRUE(AllClose(Concat({a, b}, 1), T({1, 2, 3, 4}, {1, 4})));
}

TEST(TensorOpsTest, StackCreatesNewAxis) {
  Tensor a = T({1, 2}, {2});
  Tensor b = T({3, 4}, {2});
  Tensor s = Stack({a, b}, 0);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  Tensor s1 = Stack({a, b}, 1);
  EXPECT_EQ(s1.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s1.At({0, 1}), 3.0f);
}

TEST(TensorOpsTest, SliceMiddle) {
  Tensor a = Tensor::Arange(10).Reshape({2, 5});
  Tensor s = Slice(a, 1, 1, 4);
  EXPECT_EQ(s.shape(), Shape({2, 3}));
  EXPECT_TRUE(AllClose(s, T({1, 2, 3, 6, 7, 8}, {2, 3})));
}

TEST(TensorOpsTest, IndexSelectWithRepeats) {
  Tensor a = T({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor s = IndexSelect(a, 0, {2, 0, 2});
  EXPECT_TRUE(AllClose(s, T({5, 6, 1, 2, 5, 6}, {3, 2})));
}

TEST(TensorOpsTest, IndexAddIsGatherAdjoint) {
  Tensor dst = Tensor::Zeros(Shape({3, 2}));
  Tensor src = T({1, 1, 2, 2, 4, 4}, {3, 2});
  IndexAddInto(dst, 0, {2, 0, 2}, src);
  // Row 2 accumulates twice: 1+4.
  EXPECT_TRUE(AllClose(dst, T({2, 2, 0, 0, 5, 5}, {3, 2})));
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  utils::Rng rng(5);
  Tensor a = Tensor::Normal(Shape({4, 7}), rng, 0.0f, 3.0f);
  Tensor s = Softmax(a, 1);
  Tensor sums = Sum(s, 1);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(sums[i], 1.0f, 1e-5f);
  EXPECT_GE(MinAll(s), 0.0f);
}

TEST(TensorOpsTest, SoftmaxLargeLogitsStable) {
  Tensor a = T({1000, 999, -1000}, {3});
  Tensor s = Softmax(a, 0);
  EXPECT_FALSE(HasNonFinite(s));
  EXPECT_GT(s[0], s[1]);
}

TEST(TensorOpsTest, AllCloseDetectsDifference) {
  EXPECT_TRUE(AllClose(T({1, 2}, {2}), T({1, 2}, {2})));
  EXPECT_FALSE(AllClose(T({1, 2}, {2}), T({1, 2.1f}, {2})));
  EXPECT_FALSE(AllClose(T({1, 2}, {2}), T({1, 2}, {1, 2})));
}

TEST(TensorOpsTest, HasNonFinite) {
  EXPECT_FALSE(HasNonFinite(T({1, 2}, {2})));
  EXPECT_TRUE(HasNonFinite(T({1, NAN}, {2})));
  EXPECT_TRUE(HasNonFinite(T({1, INFINITY}, {2})));
  EXPECT_TRUE(HasNonFinite(Log(T({0.0f}, {1}))));
}

// Property suite: algebraic identities on random tensors.
class TensorAlgebraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TensorAlgebraProperty, Identities) {
  utils::Rng rng(GetParam());
  Tensor a = Tensor::Normal(Shape({3, 4}), rng);
  Tensor b = Tensor::Normal(Shape({3, 4}), rng);
  Tensor c = Tensor::Normal(Shape({4}), rng);

  // Commutativity / associativity-ish (float tolerant).
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a)));
  EXPECT_TRUE(AllClose(Mul(a, b), Mul(b, a)));
  // a - a = 0, a / a = 1 (avoid tiny denominators).
  Tensor safe = AddScalar(Abs(a), 1.0f);
  EXPECT_TRUE(AllClose(Sub(a, a), Tensor::Zeros(a.shape())));
  EXPECT_TRUE(AllClose(Div(safe, safe), Tensor::Ones(a.shape())));
  // Broadcast distribution: (a + c) - c = a.
  EXPECT_TRUE(AllClose(Sub(Add(a, c), c), a, 1e-4f, 1e-3f));
  // exp(log(x)) = x for positive x.
  EXPECT_TRUE(AllClose(Exp(Log(safe)), safe, 1e-4f, 1e-3f));
  // Sum over both axes equals SumAll.
  EXPECT_NEAR(SumAll(a).Item(), SumAll(Sum(a, 0)).Item(), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Property: matmul distributes over addition and respects transpose.
class MatMulProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulProperty, Identities) {
  utils::Rng rng(GetParam());
  Tensor a = Tensor::Normal(Shape({4, 3}), rng);
  Tensor b = Tensor::Normal(Shape({3, 5}), rng);
  Tensor c = Tensor::Normal(Shape({3, 5}), rng);
  // A(B + C) = AB + AC.
  EXPECT_TRUE(AllClose(MatMul(a, Add(b, c)),
                       Add(MatMul(a, b), MatMul(a, c)), 1e-3f, 1e-3f));
  // (AB)^T = B^T A^T.
  EXPECT_TRUE(AllClose(Transpose(MatMul(a, b), 0, 1),
                       MatMul(Transpose(b, 0, 1), Transpose(a, 0, 1)),
                       1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

// Property: batched matmul with broadcast operands matches per-slice 2-D
// matmul.
class BatchedMatMulProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedMatMulProperty, MatchesLoopedMatMul) {
  utils::Rng rng(GetParam());
  Tensor a = Tensor::Normal(Shape({3, 4, 2}), rng);
  Tensor b = Tensor::Normal(Shape({3, 2, 5}), rng);
  Tensor c = BatchedMatMul(a, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor as = Slice(a, 0, bi, bi + 1).Reshape({4, 2});
    Tensor bs = Slice(b, 0, bi, bi + 1).Reshape({2, 5});
    Tensor cs = Slice(c, 0, bi, bi + 1).Reshape({4, 5});
    EXPECT_TRUE(AllClose(cs, MatMul(as, bs), 1e-4f, 1e-3f));
  }
  // Broadcast rhs.
  Tensor b2 = Tensor::Normal(Shape({2, 5}), rng);
  Tensor c2 = BatchedMatMul(a, b2);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor as = Slice(a, 0, bi, bi + 1).Reshape({4, 2});
    Tensor cs = Slice(c2, 0, bi, bi + 1).Reshape({4, 5});
    EXPECT_TRUE(AllClose(cs, MatMul(as, b2), 1e-4f, 1e-3f));
  }
  // Broadcast lhs.
  Tensor a2 = Tensor::Normal(Shape({4, 2}), rng);
  Tensor c3 = BatchedMatMul(a2, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor bs = Slice(b, 0, bi, bi + 1).Reshape({2, 5});
    Tensor cs = Slice(c3, 0, bi, bi + 1).Reshape({4, 5});
    EXPECT_TRUE(AllClose(cs, MatMul(a2, bs), 1e-4f, 1e-3f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedMatMulProperty,
                         ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace sagdfn::tensor
