// Differential tests: every tensor kernel is checked against a
// deliberately naive per-element reference implementation on randomized
// inputs. The production kernels use loop reordering, fast paths, and
// odometer iteration; the references use nothing but index arithmetic, so
// agreement across many random shapes is strong evidence of correctness.
#include <cmath>
#include <cstring>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/sagdfn.h"
#include "tensor/tensor_ops.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace sagdfn::tensor {
namespace {

// -- References ------------------------------------------------------------

float RefAt(const Tensor& t, const std::vector<int64_t>& index) {
  const auto strides = t.shape().Strides();
  int64_t offset = 0;
  for (size_t d = 0; d < index.size(); ++d) offset += index[d] * strides[d];
  return t[offset];
}

/// Broadcast lookup: maps an output index into a (possibly
/// lower-rank / size-1-dim) input.
float RefBroadcastAt(const Tensor& t, const std::vector<int64_t>& out_index,
                     int64_t out_rank) {
  const int64_t rank = t.ndim();
  std::vector<int64_t> index(rank);
  for (int64_t d = 0; d < rank; ++d) {
    const int64_t out_d = out_rank - rank + d;
    index[d] = t.dim(d) == 1 ? 0 : out_index[out_d];
  }
  return RefAt(t, index);
}

Tensor RefBinary(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& op) {
  Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  Tensor out(out_shape);
  const int64_t rank = out_shape.ndim();
  std::vector<int64_t> index(rank, 0);
  for (int64_t flat = 0; flat < out.size(); ++flat) {
    int64_t rem = flat;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape.dims()[d];
      rem /= out_shape.dims()[d];
    }
    out[flat] = op(RefBroadcastAt(a, index, rank),
                   RefBroadcastAt(b, index, rank));
  }
  return out;
}

Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out{Shape({m, n})};
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      out[i * n + j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor RefSum(const Tensor& a, int64_t axis) {
  const int64_t canon = a.shape().CanonicalAxis(axis);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims.erase(out_dims.begin() + canon);
  Tensor out{Shape(out_dims)};
  const int64_t rank = a.ndim();
  std::vector<int64_t> index(rank, 0);
  for (int64_t flat = 0; flat < a.size(); ++flat) {
    int64_t rem = flat;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % a.shape().dims()[d];
      rem /= a.shape().dims()[d];
    }
    // Output flat index with `canon` removed.
    int64_t out_flat = 0;
    for (int64_t d = 0; d < rank; ++d) {
      if (d == canon) continue;
      out_flat = out_flat * a.shape().dims()[d] + index[d];
    }
    // Note: the multiplier skips the reduced axis dimension.
    out[out_flat] += a[flat];
  }
  return out;
}

// -- Shape generator --------------------------------------------------------

std::vector<int64_t> RandomDims(utils::Rng& rng, int64_t rank) {
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) d = rng.UniformInt(1, 5);
  return dims;
}

// -- Differential suites -----------------------------------------------------

class BinaryOpDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryOpDifferential, MatchesReferenceOnRandomBroadcasts) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    std::vector<int64_t> dims = RandomDims(rng, rank);
    // Derive a broadcastable partner: randomly drop leading dims and
    // squash random dims to 1.
    std::vector<int64_t> other = dims;
    const int64_t drop = rng.UniformInt(rank + 1);
    other.erase(other.begin(), other.begin() + drop);
    for (auto& d : other) {
      if (rng.Bernoulli(0.4)) d = 1;
    }
    if (other.empty()) other.push_back(1);

    Tensor a = Tensor::Uniform(Shape(dims), rng, 0.5f, 2.0f);
    Tensor b = Tensor::Uniform(Shape(other), rng, 0.5f, 2.0f);

    EXPECT_TRUE(AllClose(Add(a, b),
                         RefBinary(a, b, std::plus<float>()), 1e-5f, 1e-5f))
        << "Add " << a.shape().ToString() << " + " << b.shape().ToString();
    EXPECT_TRUE(AllClose(Sub(b, a),
                         RefBinary(b, a, std::minus<float>()), 1e-5f,
                         1e-5f));
    EXPECT_TRUE(AllClose(Mul(a, b),
                         RefBinary(a, b, std::multiplies<float>()), 1e-5f,
                         1e-4f));
    EXPECT_TRUE(AllClose(Div(a, b),
                         RefBinary(a, b, std::divides<float>()), 1e-5f,
                         1e-4f));
    EXPECT_TRUE(AllClose(
        Maximum(a, b),
        RefBinary(a, b, [](float x, float y) { return std::max(x, y); })));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryOpDifferential,
                         ::testing::Values(101, 102, 103, 104));

class MatMulDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulDifferential, MatchesReference) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t m = rng.UniformInt(1, 9);
    const int64_t k = rng.UniformInt(1, 9);
    const int64_t n = rng.UniformInt(1, 9);
    Tensor a = Tensor::Normal(Shape({m, k}), rng);
    Tensor b = Tensor::Normal(Shape({k, n}), rng);
    EXPECT_TRUE(AllClose(MatMul(a, b), RefMatMul(a, b), 1e-4f, 1e-4f))
        << m << "x" << k << "x" << n;
  }
}

TEST_P(MatMulDifferential, SparseLhsFastPathCorrect) {
  // The production kernel skips zero entries of A; verify with mostly-zero
  // inputs.
  utils::Rng rng(GetParam() + 50);
  Tensor a = Tensor::Zeros(Shape({6, 7}));
  for (int64_t i = 0; i < a.size(); ++i) {
    if (rng.Bernoulli(0.2)) a[i] = static_cast<float>(rng.Normal());
  }
  Tensor b = Tensor::Normal(Shape({7, 5}), rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), RefMatMul(a, b), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulDifferential,
                         ::testing::Values(201, 202, 203));

class ReductionDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionDifferential, SumMatchesReferenceOnEveryAxis) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    Tensor a = Tensor::Normal(Shape(RandomDims(rng, rank)), rng);
    for (int64_t axis = 0; axis < rank; ++axis) {
      EXPECT_TRUE(AllClose(Sum(a, axis), RefSum(a, axis), 1e-4f, 1e-4f))
          << a.shape().ToString() << " axis " << axis;
      // keepdim variant reshapes to the same data.
      Tensor kept = Sum(a, axis, true);
      EXPECT_TRUE(AllClose(
          kept.Reshape(RefSum(a, axis).shape().dims()), RefSum(a, axis),
          1e-4f, 1e-4f));
    }
  }
}

TEST_P(ReductionDifferential, MeanIsSumOverCount) {
  utils::Rng rng(GetParam() + 10);
  Tensor a = Tensor::Normal(Shape({3, 5, 2}), rng);
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor expected =
        MulScalar(Sum(a, axis), 1.0f / static_cast<float>(a.dim(axis)));
    EXPECT_TRUE(AllClose(Mean(a, axis), expected, 1e-5f, 1e-5f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionDifferential,
                         ::testing::Values(301, 302, 303));

TEST(IndexingDifferential, GatherScatterRoundTrip) {
  utils::Rng rng(401);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = rng.UniformInt(3, 9);
    const int64_t c = rng.UniformInt(1, 4);
    Tensor a = Tensor::Normal(Shape({n, c}), rng);
    // Gather a permutation, scatter it back: identity.
    std::vector<int64_t> perm = rng.Permutation(n);
    Tensor gathered = IndexSelect(a, 0, perm);
    Tensor back = Tensor::Zeros(a.shape());
    IndexAddInto(back, 0, perm, gathered);
    EXPECT_TRUE(AllClose(back, a));
  }
}

TEST(IndexingDifferential, ConcatSliceInverse) {
  utils::Rng rng(402);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    std::vector<int64_t> dims = RandomDims(rng, rank);
    Tensor a = Tensor::Normal(Shape(dims), rng);
    const int64_t axis = rng.UniformInt(rank);
    const int64_t cut = rng.UniformInt(dims[axis] + 1);
    Tensor left = Slice(a, axis, 0, cut);
    Tensor right = Slice(a, axis, cut, dims[axis]);
    if (cut == 0) {
      EXPECT_TRUE(AllClose(right, a));
    } else if (cut == dims[axis]) {
      EXPECT_TRUE(AllClose(left, a));
    } else {
      EXPECT_TRUE(AllClose(Concat({left, right}, axis), a));
    }
  }
}

TEST(TransposeDifferential, MatchesElementwiseDefinition) {
  utils::Rng rng(403);
  Tensor a = Tensor::Normal(Shape({3, 4, 5}), rng);
  Tensor t = Transpose(a, 0, 2);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      for (int64_t k = 0; k < 5; ++k) {
        EXPECT_FLOAT_EQ(t.At({k, j, i}), a.At({i, j, k}));
      }
    }
  }
}

TEST(ScalarOpDifferential, RSubScalarMatchesSubFromConstant) {
  utils::Rng rng(404);
  Tensor a = Tensor::Normal(Shape({5, 7, 3}), rng);
  Tensor expected = Sub(Tensor::Full(a.shape(), 2.5f), a);
  Tensor got = RSubScalar(a, 2.5f);
  ASSERT_TRUE(got.shape() == expected.shape());
  for (int64_t i = 0; i < got.size(); ++i) {
    EXPECT_FLOAT_EQ(got[i], expected[i]);
  }
}

// -- Thread-count determinism ------------------------------------------------
//
// The parallel kernels promise bit-identical results for every thread
// count: disjoint-write kernels preserve the sequential per-element
// accumulation order, and full reductions use fixed-size blocks combined
// in block order. These tests run each kernel at 1, 2 and 8 threads on
// shapes large enough to engage the pool and require exact equality.

/// Restores the global pool size on scope exit.
class ThreadCountRestorer {
 public:
  ThreadCountRestorer() : previous_(utils::GetNumThreads()) {}
  ~ThreadCountRestorer() { utils::SetNumThreads(previous_); }

 private:
  int64_t previous_;
};

void ExpectBitIdentical(const Tensor& a, const Tensor& b,
                        const char* label) {
  ASSERT_TRUE(a.shape() == b.shape()) << label;
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0)
      << label << ": results differ across thread counts";
}

constexpr int64_t kThreadCounts[] = {1, 2, 8};

TEST(ThreadCountDeterminism, MatMulBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
  utils::Rng rng(501);
  Tensor a = Tensor::Normal(Shape({160, 96}), rng);
  Tensor b = Tensor::Normal(Shape({96, 80}), rng);
  utils::SetNumThreads(1);
  Tensor reference = MatMul(a, b);
  EXPECT_TRUE(AllClose(reference, RefMatMul(a, b), 1e-3f, 1e-3f));
  for (int64_t t : kThreadCounts) {
    utils::SetNumThreads(t);
    ExpectBitIdentical(MatMul(a, b), reference, "MatMul");
  }
}

TEST(ThreadCountDeterminism, BatchedMatMulBitIdenticalAcrossThreadCounts) {
  ThreadCountRestorer restore;
  utils::Rng rng(502);
  Tensor a = Tensor::Normal(Shape({6, 64, 40}), rng);
  Tensor b = Tensor::Normal(Shape({6, 40, 48}), rng);
  Tensor b_shared = Tensor::Normal(Shape({40, 48}), rng);
  Tensor a_shared = Tensor::Normal(Shape({64, 40}), rng);
  utils::SetNumThreads(1);
  Tensor ref_full = BatchedMatMul(a, b);
  Tensor ref_rhs = BatchedMatMul(a, b_shared);
  Tensor ref_lhs = BatchedMatMul(a_shared, b);
  for (int64_t t : kThreadCounts) {
    utils::SetNumThreads(t);
    ExpectBitIdentical(BatchedMatMul(a, b), ref_full, "BatchedMatMul");
    ExpectBitIdentical(BatchedMatMul(a, b_shared), ref_rhs,
                       "BatchedMatMul shared rhs");
    ExpectBitIdentical(BatchedMatMul(a_shared, b), ref_lhs,
                       "BatchedMatMul shared lhs");
  }
}

TEST(ThreadCountDeterminism, ElementwiseAndReductionsBitIdentical) {
  ThreadCountRestorer restore;
  utils::Rng rng(503);
  Tensor a = Tensor::Normal(Shape({16, 96, 64}), rng);
  Tensor b = Tensor::Normal(Shape({16, 96, 64}), rng);
  Tensor col = Tensor::Normal(Shape({96, 1}), rng);  // broadcast operand
  utils::SetNumThreads(1);
  Tensor ref_add = Add(a, b);
  Tensor ref_bcast = Mul(a, col);
  Tensor ref_exp = Exp(a);
  Tensor ref_sum0 = Sum(a, 0);
  Tensor ref_sum1 = Sum(a, 1, /*keepdim=*/true);
  Tensor ref_sum2 = Sum(a, 2);
  Tensor ref_max = Max(a, 1);
  Tensor ref_sum_all = SumAll(a);
  Tensor ref_transpose = Transpose(a, 0, 2);
  for (int64_t t : kThreadCounts) {
    utils::SetNumThreads(t);
    ExpectBitIdentical(Add(a, b), ref_add, "Add");
    ExpectBitIdentical(Mul(a, col), ref_bcast, "Mul broadcast");
    ExpectBitIdentical(Exp(a), ref_exp, "Exp");
    ExpectBitIdentical(Sum(a, 0), ref_sum0, "Sum axis 0");
    ExpectBitIdentical(Sum(a, 1, true), ref_sum1, "Sum axis 1 keepdim");
    ExpectBitIdentical(Sum(a, 2), ref_sum2, "Sum axis 2");
    ExpectBitIdentical(Max(a, 1), ref_max, "Max axis 1");
    ExpectBitIdentical(SumAll(a), ref_sum_all, "SumAll");
    ExpectBitIdentical(Transpose(a, 0, 2), ref_transpose, "Transpose");
  }
}

TEST(ThreadCountDeterminism, GatherScatterBitIdentical) {
  ThreadCountRestorer restore;
  utils::Rng rng(504);
  Tensor a = Tensor::Normal(Shape({4, 512, 24}), rng);
  // Repeated indices exercise the scatter's sequential-axis ordering.
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 64; ++i) indices.push_back((i * 7) % 512);
  Tensor src = Tensor::Normal(Shape({4, 64, 24}), rng);
  utils::SetNumThreads(1);
  Tensor ref_gather = IndexSelect(a, 1, indices);
  Tensor ref_scatter = Tensor::Zeros(a.shape());
  IndexAddInto(ref_scatter, 1, indices, src);
  for (int64_t t : kThreadCounts) {
    utils::SetNumThreads(t);
    ExpectBitIdentical(IndexSelect(a, 1, indices), ref_gather,
                       "IndexSelect");
    Tensor scatter = Tensor::Zeros(a.shape());
    IndexAddInto(scatter, 1, indices, src);
    ExpectBitIdentical(scatter, ref_scatter, "IndexAddInto");
  }
}

// Full-model determinism: one SAGDFN forward + backward must produce
// bit-identical predictions and gradients at every thread count (fresh
// identically-seeded model per run; all sampling is seed-deterministic).
TEST(ThreadCountDeterminism, SagdfnForwardBackwardBitIdentical) {
  ThreadCountRestorer restore;
  core::SagdfnConfig config;
  config.num_nodes = 96;
  config.embedding_dim = 8;
  config.m = 12;
  config.k = 8;
  config.hidden_dim = 24;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 4;
  config.horizon = 4;
  config.seed = 11;

  utils::Rng data_rng(505);
  Tensor x = Tensor::Normal(Shape({2, 4, 96, 2}), data_rng);
  Tensor tod = Tensor::Uniform(Shape({2, 4}), data_rng);
  Tensor target = Tensor::Normal(Shape({2, 4, 96}), data_rng);

  Tensor ref_pred;
  std::vector<std::pair<std::string, Tensor>> ref_grads;
  for (int64_t t : kThreadCounts) {
    utils::SetNumThreads(t);
    core::SagdfnModel model(config);
    autograd::Variable pred = model.Forward(x, tod, /*iteration=*/0);
    autograd::Variable loss = autograd::L1Loss(pred, autograd::Variable(target));
    loss.Backward();
    if (t == 1) {
      ref_pred = pred.value();
      for (auto& [name, param] : model.NamedParameters()) {
        ref_grads.emplace_back(name, param.grad());
      }
      continue;
    }
    ExpectBitIdentical(pred.value(), ref_pred, "SAGDFN forward");
    auto named = model.NamedParameters();
    ASSERT_EQ(named.size(), ref_grads.size());
    for (size_t i = 0; i < named.size(); ++i) {
      ASSERT_EQ(named[i].first, ref_grads[i].first);
      ExpectBitIdentical(named[i].second.grad(), ref_grads[i].second,
                         ("grad " + named[i].first).c_str());
    }
  }
}

}  // namespace
}  // namespace sagdfn::tensor
