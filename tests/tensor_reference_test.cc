// Differential tests: every tensor kernel is checked against a
// deliberately naive per-element reference implementation on randomized
// inputs. The production kernels use loop reordering, fast paths, and
// odometer iteration; the references use nothing but index arithmetic, so
// agreement across many random shapes is strong evidence of correctness.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::tensor {
namespace {

// -- References ------------------------------------------------------------

float RefAt(const Tensor& t, const std::vector<int64_t>& index) {
  const auto strides = t.shape().Strides();
  int64_t offset = 0;
  for (size_t d = 0; d < index.size(); ++d) offset += index[d] * strides[d];
  return t[offset];
}

/// Broadcast lookup: maps an output index into a (possibly
/// lower-rank / size-1-dim) input.
float RefBroadcastAt(const Tensor& t, const std::vector<int64_t>& out_index,
                     int64_t out_rank) {
  const int64_t rank = t.ndim();
  std::vector<int64_t> index(rank);
  for (int64_t d = 0; d < rank; ++d) {
    const int64_t out_d = out_rank - rank + d;
    index[d] = t.dim(d) == 1 ? 0 : out_index[out_d];
  }
  return RefAt(t, index);
}

Tensor RefBinary(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& op) {
  Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  Tensor out(out_shape);
  const int64_t rank = out_shape.ndim();
  std::vector<int64_t> index(rank, 0);
  for (int64_t flat = 0; flat < out.size(); ++flat) {
    int64_t rem = flat;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape.dims()[d];
      rem /= out_shape.dims()[d];
    }
    out[flat] = op(RefBroadcastAt(a, index, rank),
                   RefBroadcastAt(b, index, rank));
  }
  return out;
}

Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  Tensor out{Shape({m, n})};
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      out[i * n + j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor RefSum(const Tensor& a, int64_t axis) {
  const int64_t canon = a.shape().CanonicalAxis(axis);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims.erase(out_dims.begin() + canon);
  Tensor out{Shape(out_dims)};
  const int64_t rank = a.ndim();
  std::vector<int64_t> index(rank, 0);
  for (int64_t flat = 0; flat < a.size(); ++flat) {
    int64_t rem = flat;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % a.shape().dims()[d];
      rem /= a.shape().dims()[d];
    }
    // Output flat index with `canon` removed.
    int64_t out_flat = 0;
    for (int64_t d = 0; d < rank; ++d) {
      if (d == canon) continue;
      out_flat = out_flat * a.shape().dims()[d] + index[d];
    }
    // Note: the multiplier skips the reduced axis dimension.
    out[out_flat] += a[flat];
  }
  return out;
}

// -- Shape generator --------------------------------------------------------

std::vector<int64_t> RandomDims(utils::Rng& rng, int64_t rank) {
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) d = rng.UniformInt(1, 5);
  return dims;
}

// -- Differential suites -----------------------------------------------------

class BinaryOpDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryOpDifferential, MatchesReferenceOnRandomBroadcasts) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    std::vector<int64_t> dims = RandomDims(rng, rank);
    // Derive a broadcastable partner: randomly drop leading dims and
    // squash random dims to 1.
    std::vector<int64_t> other = dims;
    const int64_t drop = rng.UniformInt(rank + 1);
    other.erase(other.begin(), other.begin() + drop);
    for (auto& d : other) {
      if (rng.Bernoulli(0.4)) d = 1;
    }
    if (other.empty()) other.push_back(1);

    Tensor a = Tensor::Uniform(Shape(dims), rng, 0.5f, 2.0f);
    Tensor b = Tensor::Uniform(Shape(other), rng, 0.5f, 2.0f);

    EXPECT_TRUE(AllClose(Add(a, b),
                         RefBinary(a, b, std::plus<float>()), 1e-5f, 1e-5f))
        << "Add " << a.shape().ToString() << " + " << b.shape().ToString();
    EXPECT_TRUE(AllClose(Sub(b, a),
                         RefBinary(b, a, std::minus<float>()), 1e-5f,
                         1e-5f));
    EXPECT_TRUE(AllClose(Mul(a, b),
                         RefBinary(a, b, std::multiplies<float>()), 1e-5f,
                         1e-4f));
    EXPECT_TRUE(AllClose(Div(a, b),
                         RefBinary(a, b, std::divides<float>()), 1e-5f,
                         1e-4f));
    EXPECT_TRUE(AllClose(
        Maximum(a, b),
        RefBinary(a, b, [](float x, float y) { return std::max(x, y); })));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryOpDifferential,
                         ::testing::Values(101, 102, 103, 104));

class MatMulDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatMulDifferential, MatchesReference) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t m = rng.UniformInt(1, 9);
    const int64_t k = rng.UniformInt(1, 9);
    const int64_t n = rng.UniformInt(1, 9);
    Tensor a = Tensor::Normal(Shape({m, k}), rng);
    Tensor b = Tensor::Normal(Shape({k, n}), rng);
    EXPECT_TRUE(AllClose(MatMul(a, b), RefMatMul(a, b), 1e-4f, 1e-4f))
        << m << "x" << k << "x" << n;
  }
}

TEST_P(MatMulDifferential, SparseLhsFastPathCorrect) {
  // The production kernel skips zero entries of A; verify with mostly-zero
  // inputs.
  utils::Rng rng(GetParam() + 50);
  Tensor a = Tensor::Zeros(Shape({6, 7}));
  for (int64_t i = 0; i < a.size(); ++i) {
    if (rng.Bernoulli(0.2)) a[i] = static_cast<float>(rng.Normal());
  }
  Tensor b = Tensor::Normal(Shape({7, 5}), rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), RefMatMul(a, b), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulDifferential,
                         ::testing::Values(201, 202, 203));

class ReductionDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionDifferential, SumMatchesReferenceOnEveryAxis) {
  utils::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    Tensor a = Tensor::Normal(Shape(RandomDims(rng, rank)), rng);
    for (int64_t axis = 0; axis < rank; ++axis) {
      EXPECT_TRUE(AllClose(Sum(a, axis), RefSum(a, axis), 1e-4f, 1e-4f))
          << a.shape().ToString() << " axis " << axis;
      // keepdim variant reshapes to the same data.
      Tensor kept = Sum(a, axis, true);
      EXPECT_TRUE(AllClose(
          kept.Reshape(RefSum(a, axis).shape().dims()), RefSum(a, axis),
          1e-4f, 1e-4f));
    }
  }
}

TEST_P(ReductionDifferential, MeanIsSumOverCount) {
  utils::Rng rng(GetParam() + 10);
  Tensor a = Tensor::Normal(Shape({3, 5, 2}), rng);
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor expected =
        MulScalar(Sum(a, axis), 1.0f / static_cast<float>(a.dim(axis)));
    EXPECT_TRUE(AllClose(Mean(a, axis), expected, 1e-5f, 1e-5f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionDifferential,
                         ::testing::Values(301, 302, 303));

TEST(IndexingDifferential, GatherScatterRoundTrip) {
  utils::Rng rng(401);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = rng.UniformInt(3, 9);
    const int64_t c = rng.UniformInt(1, 4);
    Tensor a = Tensor::Normal(Shape({n, c}), rng);
    // Gather a permutation, scatter it back: identity.
    std::vector<int64_t> perm = rng.Permutation(n);
    Tensor gathered = IndexSelect(a, 0, perm);
    Tensor back = Tensor::Zeros(a.shape());
    IndexAddInto(back, 0, perm, gathered);
    EXPECT_TRUE(AllClose(back, a));
  }
}

TEST(IndexingDifferential, ConcatSliceInverse) {
  utils::Rng rng(402);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t rank = rng.UniformInt(1, 4);
    std::vector<int64_t> dims = RandomDims(rng, rank);
    Tensor a = Tensor::Normal(Shape(dims), rng);
    const int64_t axis = rng.UniformInt(rank);
    const int64_t cut = rng.UniformInt(dims[axis] + 1);
    Tensor left = Slice(a, axis, 0, cut);
    Tensor right = Slice(a, axis, cut, dims[axis]);
    if (cut == 0) {
      EXPECT_TRUE(AllClose(right, a));
    } else if (cut == dims[axis]) {
      EXPECT_TRUE(AllClose(left, a));
    } else {
      EXPECT_TRUE(AllClose(Concat({left, right}, axis), a));
    }
  }
}

TEST(TransposeDifferential, MatchesElementwiseDefinition) {
  utils::Rng rng(403);
  Tensor a = Tensor::Normal(Shape({3, 4, 5}), rng);
  Tensor t = Transpose(a, 0, 2);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      for (int64_t k = 0; k < 5; ++k) {
        EXPECT_FLOAT_EQ(t.At({k, j, i}), a.At({i, j, k}));
      }
    }
  }
}

}  // namespace
}  // namespace sagdfn::tensor
