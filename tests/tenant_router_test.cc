// Cross-tenant isolation and online continual-learning tests
// (src/serve/tenant_router.*, src/serve/online_trainer.*).
//
// The claims under test:
//   * Per-tenant byte-equality: under full multi-tenant concurrent load,
//     every tenant's forecasts are memcmp-identical to a dedicated
//     single-tenant engine serving the same model — at 1 worker and at
//     8 workers per tenant. Isolation is structural, so this is the
//     strongest cross-tenant interference check available: ANY leakage
//     (wrong model, shared state, scheduling-dependent kernels) breaks
//     the bytes. Run under TSan by tools/check_tsan.sh.
//   * Routing robustness: unknown tenants fail fast with NotFound,
//     malformed requests keep InvalidArgument, RemoveTenant with
//     requests in flight drains them — no dangling futures.
//   * Tenant-qualified faults (nan_forecast / slow_batch /
//     bad_candidate @tenant=ID) hit only the qualified tenant: the
//     faulting tenant sheds / fails / rolls back alone while its
//     neighbors keep serving byte-exact forecasts.
//   * Continual learning closes the loop: a candidate fine-tuned from
//     the live snapshot on drifted ticks passes the registry gate and
//     improves held-out MAE on the drifted distribution; poisoned
//     candidates (NaN weights, regressed MAE, torn file, injected
//     bad_candidate) are rejected with every tenant's live pointer
//     unchanged; and a fine-tune round killed mid-save (io_fail@save /
//     truncate_ckpt) reports an error, keeps the tick buffer, and
//     succeeds on retry — the registry's atomic intake never sees a
//     torn candidate.
#include "serve/tenant_router.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/registry.h"
#include "data/time_series.h"
#include "data/window_dataset.h"
#include "nn/serialization.h"
#include "obs/telemetry.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "serve/online_trainer.h"
#include "tensor/tensor.h"
#include "utils/fault.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::SagdfnConfig TinyConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 10;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 4;
  config.horizon = 3;
  config.seed = 21;
  return config;
}

void SaveCandidate(const core::SagdfnConfig& config, uint64_t seed,
                   const std::string& path) {
  core::SagdfnConfig seeded = config;
  seeded.seed = seed;
  core::SagdfnModel model(seeded);
  ASSERT_TRUE(nn::SaveModule(model, path).ok());
}

std::shared_ptr<const FrozenModel> FreshModel(const core::SagdfnConfig& config,
                                              uint64_t seed) {
  core::SagdfnConfig seeded = config;
  seeded.seed = seed;
  return std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(seeded)));
}

struct RequestData {
  Tensor x;           // [h, N, C]
  Tensor future_tod;  // [f]
};

std::vector<RequestData> MakeRequests(const core::SagdfnConfig& config,
                                      int64_t count, uint64_t seed = 3) {
  utils::Rng rng(seed);
  std::vector<RequestData> requests;
  requests.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    RequestData r;
    r.x = Tensor::Normal(
        Shape({config.history, config.num_nodes, config.input_dim}), rng);
    r.future_tod = Tensor::Uniform(Shape({config.horizon}), rng, 0.0f, 1.0f);
    requests.push_back(std::move(r));
  }
  return requests;
}

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double Mae(const Tensor& pred, const Tensor& truth) {
  EXPECT_EQ(pred.size(), truth.size());
  double total = 0.0;
  for (int64_t i = 0; i < pred.size(); ++i) {
    total += std::abs(static_cast<double>(pred.data()[i]) - truth.data()[i]);
  }
  return total / static_cast<double>(pred.size());
}

/// Held-out eval windows whose truth is the live model's own forecasts:
/// live MAE 0.0, so any byte-different candidate trips the metric gate.
void FillEvalWindows(const FrozenModel& live, RegistryOptions* options,
                     int64_t windows = 4, uint64_t seed = 5) {
  const core::SagdfnConfig& config = live.config();
  utils::Rng rng(seed);
  options->eval_x = Tensor::Normal(
      Shape({windows, config.history, config.num_nodes, config.input_dim}),
      rng);
  options->eval_tod = Tensor::Uniform(Shape({windows, config.horizon}), rng,
                                      0.0f, 1.0f);
  options->eval_y = live.Predict(options->eval_x, options->eval_tod);
}

/// A smooth diurnal base series (10-node default) the drift transform
/// and the continual-learning tests perturb. Deterministic in `seed`.
data::TimeSeries MakeBaseSeries(int64_t nodes, int64_t days,
                                int64_t steps_per_day, uint64_t seed) {
  utils::Rng rng(seed);
  data::TimeSeries series;
  series.name = "tenant-sim";
  series.steps_per_day = steps_per_day;
  const int64_t total = days * steps_per_day;
  series.values = Tensor::Zeros(Shape({total, nodes}));
  float* v = series.values.data();
  constexpr double kTwoPi = 6.283185307179586;
  for (int64_t t = 0; t < total; ++t) {
    const double tod = series.TimeOfDay(t);
    for (int64_t n = 0; n < nodes; ++n) {
      v[t * nodes + n] = static_cast<float>(
          10.0 + 3.0 * std::sin(kTwoPi * tod + 0.4 * n) + 0.3 * rng.Normal());
    }
  }
  return series;
}

/// Every test starts and ends with a disabled fault injector, even when
/// an assertion fails mid-test.
class TenantTest : public ::testing::Test {
 protected:
  void SetUp() override { utils::FaultInjector::Global().Reset(); }
  void TearDown() override { utils::FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Per-tenant byte-equality under multi-tenant concurrent load
// ---------------------------------------------------------------------------

TEST_F(TenantTest, PerTenantForecastsMatchDedicatedEngineBytes) {
  const core::SagdfnConfig config = TinyConfig();
  const std::vector<std::string> ids = {"metr-la-sim", "london2000",
                                        "newyork2000", "carpark"};
  constexpr int64_t kRequestsPerTenant = 16;

  std::map<std::string, std::shared_ptr<const FrozenModel>> models;
  std::map<std::string, std::vector<RequestData>> requests;
  for (size_t i = 0; i < ids.size(); ++i) {
    models[ids[i]] = FreshModel(config, 1000 + 111 * i);
    requests[ids[i]] =
        MakeRequests(config, kRequestsPerTenant, 50 + 7 * i);
  }

  for (const int64_t workers : {int64_t{1}, int64_t{8}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EngineOptions engine_options;
    engine_options.num_workers = workers;
    engine_options.max_batch = 4;
    engine_options.max_wait_us = 200;

    // Reference: each tenant alone on a dedicated single-tenant engine.
    std::map<std::string, std::vector<Tensor>> reference;
    for (const std::string& id : ids) {
      InferenceEngine dedicated(models[id], engine_options);
      for (const RequestData& r : requests[id]) {
        Forecast forecast = dedicated.Submit(r.x, r.future_tod).get();
        ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
        reference[id].push_back(forecast.prediction);
      }
    }

    // The same load, all tenants at once through one router, submitted
    // by one concurrent client thread per tenant with jittered arrivals.
    TenantRouter router;
    for (const std::string& id : ids) {
      TenantConfig tenant_config;
      tenant_config.engine = engine_options;
      ASSERT_TRUE(router.AddTenant(id, models[id], tenant_config).ok());
    }
    std::map<std::string, std::vector<std::future<Forecast>>> futures;
    for (const std::string& id : ids) {
      futures[id].resize(kRequestsPerTenant);
    }
    std::vector<std::thread> clients;
    for (size_t c = 0; c < ids.size(); ++c) {
      clients.emplace_back([&, c] {
        const std::string& id = ids[c];
        utils::Rng rng(900 + static_cast<uint64_t>(c));
        for (int64_t i = 0; i < kRequestsPerTenant; ++i) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(rng.Uniform(0.0, 200.0))));
          futures[id][i] = router.Submit(id, requests[id][i].x,
                                         requests[id][i].future_tod);
        }
      });
    }
    for (auto& client : clients) client.join();

    for (const std::string& id : ids) {
      for (int64_t i = 0; i < kRequestsPerTenant; ++i) {
        Forecast forecast = futures[id][i].get();
        ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
        EXPECT_TRUE(BytesEqual(forecast.prediction, reference[id][i]))
            << "tenant " << id << " request " << i
            << " differs from its dedicated single-tenant engine";
      }
      TenantStats stats;
      ASSERT_TRUE(router.StatsFor(id, &stats).ok());
      EXPECT_EQ(stats.engine.completed, kRequestsPerTenant);
      EXPECT_EQ(stats.engine.rejected, 0);
    }

    // Routing proof: the same request through different tenants hits
    // different models, hence byte-different forecasts.
    const RequestData& shared = requests[ids[0]][0];
    Forecast a = router.Submit(ids[0], shared.x, shared.future_tod).get();
    Forecast b = router.Submit(ids[1], shared.x, shared.future_tod).get();
    ASSERT_TRUE(a.status.ok() && b.status.ok());
    EXPECT_FALSE(BytesEqual(a.prediction, b.prediction))
        << "two tenants served identical bytes for one request — routing "
           "is not per-tenant";
  }
}

TEST_F(TenantTest, PerTenantTelemetryNamespacesDoNotInterleave) {
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  const bool was_enabled = obs::Telemetry::CollectionEnabled();
  obs::Telemetry::SetCollectionEnabled(true);

  const core::SagdfnConfig config = TinyConfig();
  const int64_t before_a =
      telemetry.counter("serve.tenant-a.requests.submitted");
  const int64_t before_b =
      telemetry.counter("serve.tenant-b.requests.submitted");

  TenantRouter router;
  ASSERT_TRUE(
      router.AddTenant("tenant-a", FreshModel(config, 1), TenantConfig{})
          .ok());
  ASSERT_TRUE(
      router.AddTenant("tenant-b", FreshModel(config, 2), TenantConfig{})
          .ok());
  const std::vector<RequestData> requests = MakeRequests(config, 3, 71);
  for (const RequestData& r : requests) {
    ASSERT_TRUE(router.Submit("tenant-a", r.x, r.future_tod).get().status.ok());
  }
  ASSERT_TRUE(router
                  .Submit("tenant-b", requests[0].x, requests[0].future_tod)
                  .get()
                  .status.ok());

  EXPECT_EQ(telemetry.counter("serve.tenant-a.requests.submitted") - before_a,
            3);
  EXPECT_EQ(telemetry.counter("serve.tenant-b.requests.submitted") - before_b,
            1);
  obs::Telemetry::SetCollectionEnabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Routing robustness
// ---------------------------------------------------------------------------

TEST_F(TenantTest, UnknownTenantFailsFastWithNotFound) {
  const core::SagdfnConfig config = TinyConfig();
  TenantRouter router;
  ASSERT_TRUE(
      router.AddTenant("known", FreshModel(config, 5), TenantConfig{}).ok());
  const std::vector<RequestData> requests = MakeRequests(config, 1, 73);

  std::future<Forecast> future =
      router.Submit("ghost", requests[0].x, requests[0].future_tod);
  // Fail-fast contract: the future is ready immediately — nothing was
  // enqueued anywhere.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get().status.code(), utils::StatusCode::kNotFound);

  EXPECT_EQ(router.Publish("ghost", TempPath("none.ckpt")).code(),
            utils::StatusCode::kNotFound);
  EXPECT_EQ(router.RemoveTenant("ghost").code(),
            utils::StatusCode::kNotFound);
  EXPECT_EQ(router.live("ghost"), nullptr);
  EXPECT_EQ(router.WorkersGranted("ghost"), -1);
  TenantStats stats;
  EXPECT_EQ(router.StatsFor("ghost", &stats).code(),
            utils::StatusCode::kNotFound);

  // The known tenant is untouched by the misroutes.
  Forecast ok = router.Submit("known", requests[0].x,
                              requests[0].future_tod).get();
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
}

TEST_F(TenantTest, MalformedRegistrationAndRequestsRejected) {
  const core::SagdfnConfig config = TinyConfig();
  TenantRouter router;
  EXPECT_EQ(router.AddTenant("", FreshModel(config, 5), TenantConfig{}).code(),
            utils::StatusCode::kInvalidArgument);
  EXPECT_EQ(router.AddTenant("t", nullptr, TenantConfig{}).code(),
            utils::StatusCode::kInvalidArgument);
  ASSERT_TRUE(router.AddTenant("t", FreshModel(config, 5), TenantConfig{})
                  .ok());
  EXPECT_EQ(router.AddTenant("t", FreshModel(config, 6), TenantConfig{})
                .code(),
            utils::StatusCode::kInvalidArgument)
      << "duplicate tenant ids must be rejected";

  // Shape mismatch keeps the engine's InvalidArgument semantics.
  Tensor bad_x(Shape({config.history, config.num_nodes + 1,
                      config.input_dim}));
  Tensor tod(Shape({config.horizon}));
  Forecast bad = router.Submit("t", bad_x, tod).get();
  EXPECT_EQ(bad.status.code(), utils::StatusCode::kInvalidArgument);
}

TEST_F(TenantTest, RemoveTenantDrainsInFlightRequestsAndSparesNeighbors) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_a = FreshModel(config, 31);
  auto model_b = FreshModel(config, 32);
  const std::vector<RequestData> requests = MakeRequests(config, 8, 79);

  TenantRouter router;
  TenantConfig slow_config;
  slow_config.engine.num_workers = 1;
  slow_config.engine.max_batch = 1;
  slow_config.engine.max_wait_us = 0;
  ASSERT_TRUE(router.AddTenant("doomed", model_a, slow_config).ok());
  ASSERT_TRUE(router.AddTenant("survivor", model_b, TenantConfig{}).ok());

  // Stall doomed's batches so a backlog builds, then deregister with the
  // backlog in flight.
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("slow_batch@us=3000@tenant=doomed")
                  .ok());
  std::vector<std::future<Forecast>> inflight;
  for (const RequestData& r : requests) {
    inflight.push_back(router.Submit("doomed", r.x, r.future_tod));
  }
  ASSERT_TRUE(router.RemoveTenant("doomed").ok());

  // Every future is satisfied (drain_on_shutdown runs them to
  // completion) — none dangles, none crashes.
  for (auto& future : inflight) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "RemoveTenant left a future dangling";
    EXPECT_TRUE(future.get().status.ok());
  }
  utils::FaultInjector::Global().Reset();

  // The removed tenant is gone; the neighbor never noticed.
  EXPECT_EQ(router
                .Submit("doomed", requests[0].x, requests[0].future_tod)
                .get()
                .status.code(),
            utils::StatusCode::kNotFound);
  Forecast ok = router.Submit("survivor", requests[0].x,
                              requests[0].future_tod).get();
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  TenantStats stats;
  ASSERT_TRUE(router.StatsFor("survivor", &stats).ok());
  EXPECT_EQ(stats.engine.timed_out, 0);
  EXPECT_EQ(stats.engine.shed, 0);
}

TEST_F(TenantTest, WorkerBudgetIsSharedAndReclaimed) {
  const core::SagdfnConfig config = TinyConfig();
  TenantRouterOptions options;
  options.worker_budget = 4;
  TenantRouter router(options);

  TenantConfig wants_three;
  wants_three.engine.num_workers = 3;
  ASSERT_TRUE(router.AddTenant("a", FreshModel(config, 1), wants_three).ok());
  EXPECT_EQ(router.WorkersGranted("a"), 3);
  ASSERT_TRUE(router.AddTenant("b", FreshModel(config, 2), wants_three).ok());
  EXPECT_EQ(router.WorkersGranted("b"), 1) << "only 1 of 4 budget remained";
  ASSERT_TRUE(router.AddTenant("c", FreshModel(config, 3), wants_three).ok());
  EXPECT_EQ(router.WorkersGranted("c"), 1)
      << "every tenant gets at least one worker even past the budget";

  // Removing a tenant returns its grant to the pool.
  ASSERT_TRUE(router.RemoveTenant("a").ok());
  TenantConfig wants_five;
  wants_five.engine.num_workers = 5;
  ASSERT_TRUE(router.AddTenant("d", FreshModel(config, 4), wants_five).ok());
  EXPECT_EQ(router.WorkersGranted("d"), 2) << "a's 3 freed, b+c hold 2 of 4";

  // Clamped tenants still serve correctly.
  const std::vector<RequestData> requests = MakeRequests(config, 2, 83);
  for (const std::string& id : {"b", "c", "d"}) {
    Forecast forecast =
        router.Submit(id, requests[0].x, requests[0].future_tod).get();
    EXPECT_TRUE(forecast.status.ok()) << id << ": "
                                      << forecast.status.ToString();
  }
}

// ---------------------------------------------------------------------------
// Tenant-qualified fault isolation
// ---------------------------------------------------------------------------

TEST_F(TenantTest, NanForecastFaultHitsOnlyQualifiedTenant) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_faulty = FreshModel(config, 41);
  auto model_clean = FreshModel(config, 42);
  const std::vector<RequestData> requests = MakeRequests(config, 6, 89);

  // Clean-tenant reference bytes, computed before any fault is armed.
  std::vector<Tensor> clean_reference;
  {
    InferenceEngine dedicated(model_clean, EngineOptions{});
    for (const RequestData& r : requests) {
      Forecast forecast = dedicated.Submit(r.x, r.future_tod).get();
      ASSERT_TRUE(forecast.status.ok());
      clean_reference.push_back(forecast.prediction);
    }
  }

  TenantRouter router;
  ASSERT_TRUE(router.AddTenant("carpark", model_faulty, TenantConfig{}).ok());
  ASSERT_TRUE(router.AddTenant("metr", model_clean, TenantConfig{}).ok());

  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("nan_forecast@prob=1@tenant=carpark")
                  .ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    Forecast poisoned =
        router.Submit("carpark", requests[i].x, requests[i].future_tod).get();
    EXPECT_EQ(poisoned.status.code(), utils::StatusCode::kInternal)
        << poisoned.status.ToString();
    Forecast clean =
        router.Submit("metr", requests[i].x, requests[i].future_tod).get();
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_TRUE(BytesEqual(clean.prediction, clean_reference[i]))
        << "neighbor tenant's bytes changed while carpark was faulting";
  }
  utils::FaultInjector::Global().Reset();

  TenantStats faulty_stats;
  TenantStats clean_stats;
  ASSERT_TRUE(router.StatsFor("carpark", &faulty_stats).ok());
  ASSERT_TRUE(router.StatsFor("metr", &clean_stats).ok());
  EXPECT_EQ(faulty_stats.engine.nonfinite,
            static_cast<int64_t>(requests.size()));
  EXPECT_EQ(clean_stats.engine.nonfinite, 0);
}

TEST_F(TenantTest, SlowBatchFaultTimesOutOnlyQualifiedTenant) {
  const core::SagdfnConfig config = TinyConfig();
  const std::vector<RequestData> requests = MakeRequests(config, 4, 97);

  TenantRouter router;
  TenantConfig serial;
  serial.engine.num_workers = 1;
  serial.engine.max_batch = 1;
  serial.engine.max_wait_us = 0;
  ASSERT_TRUE(router.AddTenant("london2000", FreshModel(config, 51), serial)
                  .ok());
  ASSERT_TRUE(router.AddTenant("newyork2000", FreshModel(config, 52), serial)
                  .ok());

  // Every london batch stalls 30 ms; its queued requests carry 5 ms
  // deadlines and expire behind the stall. newyork runs the same load
  // with the same deadlines, unstalled.
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("slow_batch@us=30000@tenant=london2000")
                  .ok());
  const auto deadline = std::chrono::microseconds(5000);
  std::vector<std::future<Forecast>> slow;
  for (const RequestData& r : requests) {
    slow.push_back(router.Submit("london2000", r.x, r.future_tod, deadline));
  }
  int64_t expired = 0;
  for (auto& future : slow) {
    const Forecast forecast = future.get();
    if (forecast.status.code() == utils::StatusCode::kDeadlineExceeded) {
      ++expired;
    }
  }
  EXPECT_GT(expired, 0) << "the stalled tenant should expire queued work";

  for (const RequestData& r : requests) {
    Forecast forecast =
        router.Submit("newyork2000", r.x, r.future_tod, deadline).get();
    EXPECT_TRUE(forecast.status.ok()) << forecast.status.ToString();
  }
  utils::FaultInjector::Global().Reset();

  TenantStats ny_stats;
  ASSERT_TRUE(router.StatsFor("newyork2000", &ny_stats).ok());
  EXPECT_EQ(ny_stats.engine.timed_out, 0)
      << "the unqualified tenant must not inherit the stall";
}

TEST_F(TenantTest, BadCandidateFaultAndRollbackIsolatedPerTenant) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_x = FreshModel(config, 61);
  auto model_y = FreshModel(config, 62);
  const std::string cand_x = TempPath("tenant_cand_x.ckpt");
  const std::string cand_y = TempPath("tenant_cand_y.ckpt");
  SaveCandidate(config, 63, cand_x);
  SaveCandidate(config, 64, cand_y);

  TenantRouter router;
  TenantConfig serial;
  serial.engine.num_workers = 1;
  serial.engine.max_batch = 1;
  serial.engine.max_wait_us = 0;
  serial.registry.health_window = 16;
  serial.registry.max_nonfinite = 0;
  serial.registry.p99_regression_factor = 0.0;
  ASSERT_TRUE(router.AddTenant("newyork2000", model_x, serial).ok());
  ASSERT_TRUE(router.AddTenant("london2000", model_y, serial).ok());

  // Gate: the qualified tenant's publish fails; the neighbor's succeeds.
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("bad_candidate@tenant=newyork2000")
                  .ok());
  const FrozenModel* x_before = router.live("newyork2000").get();
  EXPECT_EQ(router.Publish("newyork2000", cand_x).code(),
            utils::StatusCode::kInternal);
  EXPECT_EQ(router.live("newyork2000").get(), x_before)
      << "a rejected candidate must never move the live pointer";
  EXPECT_TRUE(router.Publish("london2000", cand_y).ok())
      << "the unqualified tenant's publish must not trip the fault";
  EXPECT_NE(router.live("london2000").get(), model_y.get());
  utils::FaultInjector::Global().Reset();

  TenantStats x_stats;
  TenantStats y_stats;
  ASSERT_TRUE(router.StatsFor("newyork2000", &x_stats).ok());
  ASSERT_TRUE(router.StatsFor("london2000", &y_stats).ok());
  EXPECT_EQ(x_stats.registry.rejected, 1);
  EXPECT_EQ(x_stats.registry.published, 0);
  EXPECT_EQ(y_stats.registry.published, 1);

  // Probation: publish to the faulted tenant cleanly, then poison only
  // its forecasts. It must roll back alone; the neighbor's live pointer
  // and probation stay untouched.
  ASSERT_TRUE(router.Publish("newyork2000", cand_x).ok());
  const FrozenModel* x_published = router.live("newyork2000").get();
  ASSERT_NE(x_published, x_before);
  ASSERT_TRUE(router.on_probation("newyork2000"));
  const FrozenModel* y_live = router.live("london2000").get();

  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("nan_forecast@prob=1@tenant=newyork2000")
                  .ok());
  const std::vector<RequestData> requests = MakeRequests(config, 20, 101);
  for (int64_t i = 0; i < 16; ++i) {
    Forecast forecast =
        router.Submit("newyork2000", requests[i].x, requests[i].future_tod)
            .get();
    EXPECT_EQ(forecast.status.code(), utils::StatusCode::kInternal);
    ASSERT_TRUE(router.StatsFor("newyork2000", &x_stats).ok());
    if (x_stats.engine.rollbacks > 0) break;
  }
  utils::FaultInjector::Global().Reset();

  ASSERT_TRUE(router.StatsFor("newyork2000", &x_stats).ok());
  ASSERT_TRUE(router.StatsFor("london2000", &y_stats).ok());
  EXPECT_EQ(x_stats.engine.rollbacks, 1)
      << "NaN probe did not roll the faulting tenant back";
  EXPECT_EQ(router.live("newyork2000").get(), x_before)
      << "rollback must restore the faulting tenant's previous snapshot";
  EXPECT_EQ(y_stats.engine.rollbacks, 0);
  EXPECT_EQ(router.live("london2000").get(), y_live)
      << "the neighbor's live pointer moved during another tenant's "
         "rollback";
  std::remove(cand_x.c_str());
  std::remove(cand_y.c_str());
}

// ---------------------------------------------------------------------------
// Online continual learning
// ---------------------------------------------------------------------------

TEST_F(TenantTest, FineTunedCandidatePassesGateAndImprovesDriftedMae) {
  // Deployment: a model trained on the base distribution, serving in the
  // base scaler's space.
  const int64_t kNodes = 10;
  const int64_t kStepsPerDay = 24;
  const data::TimeSeries base = MakeBaseSeries(kNodes, 7, kStepsPerDay, 404);
  const data::WindowSpec spec{4, 3};
  const data::ForecastDataset base_dataset(base, spec);

  core::SagdfnConfig config = TinyConfig();
  config.num_nodes = kNodes;
  config.history = spec.history;
  config.horizon = spec.horizon;
  auto deployed = std::make_unique<core::SagdfnModel>(config);
  core::TrainOptions pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 8;
  pretrain.learning_rate = 0.01;
  core::Trainer trainer(deployed.get(), &base_dataset, pretrain);
  ASSERT_TRUE(trainer.Train().status.ok());
  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::move(deployed)));

  // The world drifts. Held-out windows come from the drifted test split,
  // scaled with the DEPLOYMENT's scaler (the serving space).
  const data::TimeSeries drifted = data::ApplyDrift(base, data::DriftOptions{});
  const data::ForecastDataset drift_dataset(drifted, spec,
                                            base_dataset.scaler());
  const data::Batch eval =
      drift_dataset.GetBatch(data::Split::kTest, 0, 8);

  TenantRouter router;
  TenantConfig tenant_config;
  tenant_config.registry.eval_x = eval.x;
  tenant_config.registry.eval_tod = eval.future_tod;
  tenant_config.registry.eval_y = eval.y_scaled;
  tenant_config.registry.max_mae_regression = 0.05;
  tenant_config.registry.health_window = 0;  // isolate the gate
  ASSERT_TRUE(router.AddTenant("metr-la-sim", live, tenant_config).ok());

  OnlineTrainerOptions online;
  online.candidate_dir = FreshDir("online_drift");
  online.train.epochs = 12;
  online.train.batch_size = 8;
  online.train.learning_rate = 0.01;
  OnlineTrainer online_trainer(&router, online);
  ASSERT_TRUE(online_trainer
                  .Track("metr-la-sim", base_dataset.scaler(), spec,
                         kStepsPerDay)
                  .ok());

  // Fresh drifted ticks arrive (the drifted train region, raw units).
  const int64_t fresh_frames = drift_dataset.TrainEndStep();
  for (int64_t t = 0; t < fresh_frames; ++t) {
    Tensor frame(Shape({kNodes}));
    std::memcpy(frame.data(), drifted.values.data() + t * kNodes,
                kNodes * sizeof(float));
    ASSERT_TRUE(online_trainer.Observe("metr-la-sim", frame).ok());
  }
  EXPECT_GE(online_trainer.BufferedFrames("metr-la-sim"),
            10 * (spec.history + spec.horizon) + 10);

  // One fine-tune round: clone live -> train on the buffer -> candidate
  // -> registry gate. It must pass and go live for this tenant.
  const double live_mae =
      Mae(live->Predict(eval.x, eval.future_tod), eval.y_scaled);
  utils::Status round = online_trainer.FineTuneOnce("metr-la-sim");
  ASSERT_TRUE(round.ok()) << round.ToString();
  EXPECT_EQ(online_trainer.stats("metr-la-sim").published, 1);
  auto tuned = router.live("metr-la-sim");
  ASSERT_NE(tuned.get(), live.get()) << "the fine-tuned candidate did not "
                                        "go live";

  // The differential: fine-tuning on drifted ticks must IMPROVE held-out
  // MAE on the drifted distribution, not merely pass the <= 1.05x gate.
  const double tuned_mae =
      Mae(tuned->Predict(eval.x, eval.future_tod), eval.y_scaled);
  EXPECT_LT(tuned_mae, live_mae)
      << "fine-tuned MAE " << tuned_mae << " vs frozen " << live_mae;
  std::cout << "[ drift    ] frozen MAE " << live_mae << " -> fine-tuned MAE "
            << tuned_mae << " (scaled units, drifted held-out)\n";

  // And the tenant keeps serving after the swap.
  const std::vector<RequestData> requests = MakeRequests(config, 1, 107);
  Forecast forecast =
      router.Submit("metr-la-sim", requests[0].x, requests[0].future_tod)
          .get();
  EXPECT_TRUE(forecast.status.ok()) << forecast.status.ToString();
}

TEST_F(TenantTest, PoisonedCandidatesNeverMoveAnyLivePointer) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_a = FreshModel(config, 81);
  auto model_b = FreshModel(config, 82);

  TenantRouter router;
  TenantConfig gated;
  FillEvalWindows(*model_a, &gated.registry);
  gated.registry.max_mae_regression = 0.05;
  ASSERT_TRUE(router.AddTenant("gated", model_a, gated).ok());
  ASSERT_TRUE(router.AddTenant("bystander", model_b, TenantConfig{}).ok());
  const FrozenModel* a_live = router.live("gated").get();
  const FrozenModel* b_live = router.live("bystander").get();

  // Poison 1: NaN weights.
  const std::string nan_path = TempPath("poison_nan.ckpt");
  {
    core::SagdfnModel model(config);
    auto params = model.NamedParameters();
    ASSERT_FALSE(params.empty());
    params[0].second.mutable_value().data()[0] =
        std::numeric_limits<float>::quiet_NaN();
    ASSERT_TRUE(nn::SaveModule(model, nan_path).ok());
  }
  EXPECT_EQ(router.Publish("gated", nan_path).code(),
            utils::StatusCode::kFailedPrecondition);

  // Poison 2: honest weights, regressed held-out MAE.
  const std::string worse_path = TempPath("poison_worse.ckpt");
  SaveCandidate(config, 99, worse_path);
  EXPECT_EQ(router.Publish("gated", worse_path).code(),
            utils::StatusCode::kFailedPrecondition);

  // Poison 3: torn candidate file (atomic intake).
  const std::string torn_path = TempPath("poison_torn.ckpt");
  SaveCandidate(config, 98, torn_path);
  {
    std::ifstream in(torn_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(router.Publish("gated", torn_path).ok());

  // Poison 4: injected bad_candidate for this tenant.
  const std::string fault_path = TempPath("poison_fault.ckpt");
  SaveCandidate(config, 97, fault_path);
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("bad_candidate@tenant=gated")
                  .ok());
  EXPECT_EQ(router.Publish("gated", fault_path).code(),
            utils::StatusCode::kInternal);
  utils::FaultInjector::Global().Reset();

  // No live pointer moved — not the gated tenant's, not anyone's.
  EXPECT_EQ(router.live("gated").get(), a_live);
  EXPECT_EQ(router.live("bystander").get(), b_live);
  TenantStats stats;
  ASSERT_TRUE(router.StatsFor("gated", &stats).ok());
  EXPECT_EQ(stats.registry.rejected, 4);
  EXPECT_EQ(stats.registry.published, 0);
  EXPECT_EQ(stats.engine.swaps, 0);
  for (const std::string& path :
       {nan_path, worse_path, torn_path, fault_path}) {
    std::remove(path.c_str());
  }
}

TEST_F(TenantTest, FineTuneRoundKilledMidSaveRetriesCleanly) {
  const int64_t kNodes = 10;
  const int64_t kStepsPerDay = 24;
  const data::TimeSeries base = MakeBaseSeries(kNodes, 5, kStepsPerDay, 505);
  const data::WindowSpec spec{4, 3};
  const data::ForecastDataset base_dataset(base, spec);

  core::SagdfnConfig config = TinyConfig();
  config.num_nodes = kNodes;
  config.history = spec.history;
  config.horizon = spec.horizon;
  auto live = FreshModel(config, 515);

  TenantRouter router;
  ASSERT_TRUE(router.AddTenant("carpark", live, TenantConfig{}).ok());

  OnlineTrainerOptions online;
  online.candidate_dir = FreshDir("online_kill");
  online.train.epochs = 2;
  online.train.batch_size = 8;
  OnlineTrainer online_trainer(&router, online);
  ASSERT_TRUE(
      online_trainer.Track("carpark", base_dataset.scaler(), spec,
                           kStepsPerDay)
          .ok());
  const int64_t frames = 4 * kStepsPerDay;  // above the 10x-window floor
  for (int64_t t = 0; t < frames; ++t) {
    Tensor frame(Shape({kNodes}));
    std::memcpy(frame.data(), base.values.data() + t * kNodes,
                kNodes * sizeof(float));
    ASSERT_TRUE(online_trainer.Observe("carpark", frame).ok());
  }

  // Kill 1: the candidate write itself fails.
  ASSERT_TRUE(utils::FaultInjector::Global().Configure("io_fail@save=1").ok());
  EXPECT_FALSE(online_trainer.FineTuneOnce("carpark").ok());
  utils::FaultInjector::Global().Reset();
  EXPECT_EQ(router.live("carpark").get(), live.get());
  EXPECT_EQ(online_trainer.stats("carpark").errors, 1);
  EXPECT_EQ(online_trainer.BufferedFrames("carpark"), frames)
      << "a failed round must keep the tick buffer for the retry";

  // Kill 2: the write is torn mid-flight. The checkpoint writer's
  // verify-before-publish catches it — the torn temp never becomes a
  // candidate, so the registry's intake never sees torn bytes.
  ASSERT_TRUE(utils::FaultInjector::Global().Configure("truncate_ckpt").ok());
  EXPECT_FALSE(online_trainer.FineTuneOnce("carpark").ok());
  utils::FaultInjector::Global().Reset();
  EXPECT_EQ(router.live("carpark").get(), live.get());
  EXPECT_EQ(online_trainer.stats("carpark").errors, 2);
  for (const auto& entry :
       std::filesystem::directory_iterator(online.candidate_dir)) {
    EXPECT_TRUE(entry.path().extension() != ".ckpt")
        << "a killed round left a published candidate: " << entry.path();
  }

  // Resume: the same buffer, no faults — the round completes and the
  // candidate goes live through the gate.
  utils::Status retry = online_trainer.FineTuneOnce("carpark");
  EXPECT_TRUE(retry.ok()) << retry.ToString();
  EXPECT_EQ(online_trainer.stats("carpark").published, 1);
  EXPECT_NE(router.live("carpark").get(), live.get());
  std::filesystem::remove_all(online.candidate_dir);
}

TEST_F(TenantTest, BackgroundSweepClosesTheLoopWithStreaming) {
  const int64_t kNodes = 10;
  const int64_t kStepsPerDay = 24;
  const data::TimeSeries base = MakeBaseSeries(kNodes, 5, kStepsPerDay, 606);
  const data::WindowSpec spec{4, 3};
  const data::ForecastDataset base_dataset(base, spec);

  core::SagdfnConfig config = TinyConfig();
  config.num_nodes = kNodes;
  config.history = spec.history;
  config.horizon = spec.horizon;
  auto live = FreshModel(config, 616);

  TenantRouter router;
  TenantConfig streaming;
  streaming.enable_streaming = true;
  ASSERT_TRUE(router.AddTenant("carpark", live, streaming).ok());

  OnlineTrainerOptions online;
  online.candidate_dir = FreshDir("online_sweep");
  online.train.epochs = 2;
  online.train.batch_size = 8;
  online.interval_ms = 20;
  OnlineTrainer online_trainer(&router, online);
  ASSERT_TRUE(
      online_trainer.Track("carpark", base_dataset.scaler(), spec,
                           kStepsPerDay)
          .ok());
  online_trainer.Start();

  // Live ticks flow into BOTH the streamer (forecast path) and the
  // online buffer (learning path) — the production wiring.
  const tensor::Tensor& scaled = base_dataset.scaled_values();
  int64_t ticks = 0;
  for (int64_t t = 0; t < 4 * kStepsPerDay; ++t) {
    Tensor frame(Shape({kNodes}));
    std::memcpy(frame.data(), base.values.data() + t * kNodes,
                kNodes * sizeof(float));
    ASSERT_TRUE(online_trainer.Observe("carpark", frame).ok());

    Tensor stream_frame(Shape({kNodes, config.input_dim}));
    const float tod = static_cast<float>(base.TimeOfDay(t));
    for (int64_t n = 0; n < kNodes; ++n) {
      stream_frame.data()[n * config.input_dim] =
          scaled.data()[t * kNodes + n];
      stream_frame.data()[n * config.input_dim + 1] = tod;
    }
    Tensor future_tod(Shape({spec.horizon}));
    for (int64_t f = 0; f < spec.horizon; ++f) {
      future_tod.data()[f] =
          static_cast<float>(base.TimeOfDay(t + 1 + f));
    }
    if (router.OnTick("carpark", stream_frame, future_tod) != nullptr) {
      ++ticks;
    }
  }
  EXPECT_GT(ticks, 0) << "the streaming path never produced a forecast";

  // The sweep thread must publish a fine-tuned candidate on its own.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (online_trainer.stats("carpark").published == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  online_trainer.Stop();
  EXPECT_GE(online_trainer.stats("carpark").published, 1)
      << "the background sweep never closed the loop";
  EXPECT_NE(router.live("carpark").get(), live.get());

  // The streaming cache survived the swap: the next tick republishes on
  // the NEW live snapshot.
  {
    const int64_t t = 4 * kStepsPerDay;
    Tensor stream_frame(Shape({kNodes, config.input_dim}));
    const float tod = static_cast<float>(base.TimeOfDay(t));
    for (int64_t n = 0; n < kNodes; ++n) {
      stream_frame.data()[n * config.input_dim] =
          scaled.data()[t * kNodes + n];
      stream_frame.data()[n * config.input_dim + 1] = tod;
    }
    Tensor future_tod(Shape({spec.horizon}));
    for (int64_t f = 0; f < spec.horizon; ++f) {
      future_tod.data()[f] =
          static_cast<float>(base.TimeOfDay(t + 1 + f));
    }
    auto forecast = router.OnTick("carpark", stream_frame, future_tod);
    ASSERT_NE(forecast, nullptr);
    EXPECT_EQ(forecast->model.get(), router.live("carpark").get())
        << "the post-swap tick forecast must come from the new snapshot";
    EXPECT_EQ(router.ReadCached("carpark").get(), forecast.get());
  }
  std::filesystem::remove_all(online.candidate_dir);
}

}  // namespace
}  // namespace sagdfn::serve
