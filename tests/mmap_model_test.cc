// Round-trip and corruption coverage for the mapped ("SAGM") weight-file
// format and the FrozenModel mmap load path. The contract under test:
// a model restored via LoadMapped produces forecasts memcmp-identical to
// the same model restored via the heap checkpoint path, and corrupt or
// truncated files are rejected cleanly (no partial model, no fault).
#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

core::SagdfnConfig TinyConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 12;
  config.embedding_dim = 4;
  config.m = 6;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 4;
  config.horizon = 3;
  config.seed = 31;
  return config;
}

Checkpoint SampleCheckpoint() {
  utils::Rng rng(5);
  Checkpoint ckpt;
  ckpt.tensors.emplace_back("w", Tensor::Normal(Shape({7, 3}), rng));
  ckpt.tensors.emplace_back("b", Tensor::Uniform(Shape({3}), rng));
  ckpt.tensors.emplace_back("deep.scale", Tensor::Normal(Shape({1}), rng));
  ckpt.meta.emplace_back("steps", std::vector<uint64_t>{1, 2, 3});
  ckpt.meta.emplace_back("empty", std::vector<uint64_t>{});
  return ckpt;
}

TEST(MappedCheckpointTest, RoundTripIsExact) {
  const std::string path = TempPath("mapped_roundtrip.sagm");
  Checkpoint ckpt = SampleCheckpoint();
  ASSERT_TRUE(SaveMappedCheckpoint(ckpt, path).ok());

  MappedCheckpoint mapped;
  ASSERT_TRUE(OpenMappedCheckpoint(&mapped, path).ok());
  ASSERT_EQ(mapped.tensors.size(), ckpt.tensors.size());
  for (size_t i = 0; i < ckpt.tensors.size(); ++i) {
    EXPECT_EQ(mapped.tensors[i].first, ckpt.tensors[i].first);
    EXPECT_TRUE(SameBytes(mapped.tensors[i].second, ckpt.tensors[i].second));
    // Mapped views are 64-byte aligned for the SIMD kernels.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(
                  mapped.tensors[i].second.data()) % 64, 0u);
  }
  ASSERT_EQ(mapped.meta.size(), ckpt.meta.size());
  for (size_t i = 0; i < ckpt.meta.size(); ++i) {
    EXPECT_EQ(mapped.meta[i].first, ckpt.meta[i].first);
    EXPECT_EQ(mapped.meta[i].second, ckpt.meta[i].second);
  }
}

TEST(MappedCheckpointTest, ViewsOutliveTheCheckpointStruct) {
  const std::string path = TempPath("mapped_lifetime.sagm");
  ASSERT_TRUE(SaveMappedCheckpoint(SampleCheckpoint(), path).ok());
  Tensor view;
  {
    MappedCheckpoint mapped;
    ASSERT_TRUE(OpenMappedCheckpoint(&mapped, path).ok());
    view = mapped.tensors[0].second;  // shares the mapping's lifetime
  }
  // The mapping is kept alive by the view's owner; reading must be safe.
  EXPECT_TRUE(SameBytes(view, SampleCheckpoint().tensors[0].second));
}

TEST(MappedCheckpointTest, RejectsCorruptFiles) {
  const std::string path = TempPath("mapped_corrupt.sagm");
  ASSERT_TRUE(SaveMappedCheckpoint(SampleCheckpoint(), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 80u);

  auto write_variant = [&](const std::string& name, std::string mutated) {
    const std::string p = TempPath(name);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    return p;
  };

  MappedCheckpoint mapped;
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(
      OpenMappedCheckpoint(&mapped, write_variant("bad_magic", bad_magic))
          .ok());
  // Future version.
  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(
      OpenMappedCheckpoint(&mapped,
                           write_variant("bad_version", bad_version))
          .ok());
  // Truncated payload.
  EXPECT_FALSE(OpenMappedCheckpoint(
                   &mapped, write_variant("truncated",
                                          bytes.substr(0, bytes.size() - 8)))
                   .ok());
  // Trailing garbage (declared size disagrees with actual size).
  EXPECT_FALSE(OpenMappedCheckpoint(
                   &mapped, write_variant("padded", bytes + "xxxx"))
                   .ok());
  // Empty file.
  EXPECT_FALSE(
      OpenMappedCheckpoint(&mapped, write_variant("empty", "")).ok());
  // The pristine file still opens after all that.
  EXPECT_TRUE(OpenMappedCheckpoint(&mapped, path).ok());
}

TEST(FrozenModelMappedTest, LoadMappedMatchesHeapLoadExactly) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string mapped_path = TempPath("frozen_tiny.sagm");
  const std::string heap_path = TempPath("frozen_tiny.ckpt");

  // Build + freeze a model, persist it both ways.
  auto source = serve::FrozenModel::Freeze(
      std::make_unique<core::SagdfnModel>(config));
  ASSERT_TRUE(source->Save(mapped_path).ok());
  ASSERT_TRUE(SaveModule(source->model(), heap_path).ok());

  std::unique_ptr<serve::FrozenModel> heap;
  ASSERT_TRUE(
      serve::FrozenModel::Load(config, heap_path, &heap).ok());
  std::unique_ptr<serve::FrozenModel> mapped;
  ASSERT_TRUE(
      serve::FrozenModel::LoadMapped(config, mapped_path, &mapped).ok());

  // Identical snapshots...
  EXPECT_TRUE(SameBytes(mapped->snapshot().a_s, heap->snapshot().a_s));
  EXPECT_TRUE(
      SameBytes(mapped->snapshot().inv_deg, heap->snapshot().inv_deg));
  EXPECT_EQ(mapped->snapshot().index_set, heap->snapshot().index_set);

  // ...and memcmp-identical forecasts, via the plan replay AND the eager
  // path, for a couple of batch sizes.
  utils::Rng rng(17);
  for (int64_t batch : {1, 3}) {
    Tensor x = Tensor::Normal(
        Shape({batch, config.history, config.num_nodes, config.input_dim}),
        rng);
    Tensor tod = Tensor::Uniform(Shape({batch, config.horizon}), rng);
    EXPECT_TRUE(SameBytes(mapped->Predict(x, tod), heap->Predict(x, tod)));
    EXPECT_TRUE(SameBytes(mapped->PredictEager(x, tod),
                          heap->PredictEager(x, tod)));
  }
}

TEST(FrozenModelMappedTest, RejectsConfigMismatch) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path = TempPath("frozen_mismatch.sagm");
  auto source = serve::FrozenModel::Freeze(
      std::make_unique<core::SagdfnModel>(config));
  ASSERT_TRUE(source->Save(path).ok());

  core::SagdfnConfig other = config;
  other.hidden_dim += 2;
  std::unique_ptr<serve::FrozenModel> loaded;
  EXPECT_FALSE(serve::FrozenModel::LoadMapped(other, path, &loaded).ok());
  EXPECT_EQ(loaded, nullptr);
}

TEST(FrozenModelMappedTest, SaveIsDeterministic) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string p1 = TempPath("frozen_det_1.sagm");
  const std::string p2 = TempPath("frozen_det_2.sagm");
  auto source = serve::FrozenModel::Freeze(
      std::make_unique<core::SagdfnModel>(config));
  ASSERT_TRUE(source->Save(p1).ok());
  ASSERT_TRUE(source->Save(p2).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::string b1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string b2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(b1, b2);
  EXPECT_GT(b1.size(), 64u);
}

}  // namespace
}  // namespace sagdfn::nn
