// Hot-swap registry and serve-path failure-semantics tests (src/serve).
//
// The claims under test:
//   * Swap atomicity: concurrent submitters across a SwapModel/Publish
//     all complete; every forecast is byte-identical to the snapshot it
//     ran on (memcmp against the per-model serial reference), in-flight
//     batches finish on the pre-swap model, and post-swap requests match
//     the new one — serial and 8-worker. The suite is run under TSan by
//     tools/check_tsan.sh.
//   * Quality gate: every injected bad candidate (non-finite weights,
//     truncated file, metric regression, bad_candidate fault) is
//     rejected without the live FrozenModel pointer ever changing.
//   * Health probes: a tripped probe (NaN forecasts, latency regression)
//     rolls the engine back to the previous snapshot within a bounded
//     number of requests.
//   * Deadlines and shedding: queue-expired requests are rejected with
//     DeadlineExceeded and never executed; the soft watermark sheds with
//     Unavailable.
#include "serve/registry.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "nn/serialization.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/fault.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::SagdfnConfig TinyConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 10;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 4;
  config.horizon = 3;
  config.seed = 21;
  return config;
}

/// Builds a model with `seed` (different seeds give different weights,
/// hence byte-distinguishable forecasts) and checkpoints it at `path`.
void SaveCandidate(const core::SagdfnConfig& config, uint64_t seed,
                   const std::string& path) {
  core::SagdfnConfig seeded = config;
  seeded.seed = seed;
  core::SagdfnModel model(seeded);
  ASSERT_TRUE(nn::SaveModule(model, path).ok());
}

std::shared_ptr<const FrozenModel> LoadFrozen(
    const core::SagdfnConfig& config, const std::string& path) {
  std::unique_ptr<FrozenModel> frozen;
  utils::Status status = FrozenModel::Load(config, path, &frozen);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return std::shared_ptr<const FrozenModel>(std::move(frozen));
}

struct RequestData {
  Tensor x;           // [h, N, C]
  Tensor future_tod;  // [f]
};

std::vector<RequestData> MakeRequests(const core::SagdfnConfig& config,
                                      int64_t count, uint64_t seed = 3) {
  utils::Rng rng(seed);
  std::vector<RequestData> requests;
  requests.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    RequestData r;
    r.x = Tensor::Normal(
        Shape({config.history, config.num_nodes, config.input_dim}), rng);
    r.future_tod = Tensor::Uniform(Shape({config.horizon}), rng, 0.0f, 1.0f);
    requests.push_back(std::move(r));
  }
  return requests;
}

/// Serial ground truth: each request alone through `model`.
std::vector<Tensor> SerialReference(const FrozenModel& model,
                                    const std::vector<RequestData>& requests) {
  const core::SagdfnConfig& config = model.config();
  std::vector<Tensor> reference;
  reference.reserve(requests.size());
  for (const RequestData& r : requests) {
    Tensor x(Shape({1, config.history, config.num_nodes, config.input_dim}));
    std::memcpy(x.data(), r.x.data(), r.x.size() * sizeof(float));
    Tensor tod(Shape({1, config.horizon}));
    std::memcpy(tod.data(), r.future_tod.data(),
                r.future_tod.size() * sizeof(float));
    reference.push_back(model.Predict(x, tod));  // [1, f, N]
  }
  return reference;
}

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Held-out eval windows whose truth is exactly the live model's own
/// forecast: the live MAE is 0.0, so any byte-different candidate fails
/// the metric gate while an identical-weights candidate passes it.
void FillEvalWindows(const FrozenModel& live, RegistryOptions* options,
                     int64_t windows = 4, uint64_t seed = 5) {
  const core::SagdfnConfig& config = live.config();
  utils::Rng rng(seed);
  options->eval_x = Tensor::Normal(
      Shape({windows, config.history, config.num_nodes, config.input_dim}),
      rng);
  options->eval_tod = Tensor::Uniform(Shape({windows, config.horizon}), rng,
                                      0.0f, 1.0f);
  options->eval_y = live.Predict(options->eval_x, options->eval_tod);
}

// ---------------------------------------------------------------------------
// Swap atomicity
// ---------------------------------------------------------------------------

TEST(RegistryTest, SerialSwapServesOldThenNewBytes) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_a = TempPath("swap_serial_a.ckpt");
  const std::string path_b = TempPath("swap_serial_b.ckpt");
  SaveCandidate(config, 101, path_a);
  SaveCandidate(config, 202, path_b);
  auto model_a = LoadFrozen(config, path_a);
  auto model_b = LoadFrozen(config, path_b);

  const std::vector<RequestData> requests = MakeRequests(config, 12);
  const std::vector<Tensor> ref_a = SerialReference(*model_a, requests);
  const std::vector<Tensor> ref_b = SerialReference(*model_b, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_FALSE(BytesEqual(ref_a[i], ref_b[i]))
        << "seeds 101/202 produced identical forecasts; the swap test "
           "cannot distinguish the models";
  }

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.max_wait_us = 100;
  InferenceEngine engine(model_a, options);
  ModelRegistry registry(&engine, RegistryOptions{});

  for (size_t i = 0; i < requests.size(); ++i) {
    Forecast forecast =
        engine.Submit(requests[i].x, requests[i].future_tod).get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, ref_a[i]))
        << "pre-swap request " << i << " differs from model A";
  }

  utils::Status published = registry.Publish(path_b);
  ASSERT_TRUE(published.ok()) << published.ToString();
  EXPECT_EQ(engine.stats().swaps, 1);
  EXPECT_EQ(registry.stats().published, 1);

  for (size_t i = 0; i < requests.size(); ++i) {
    Forecast forecast =
        engine.Submit(requests[i].x, requests[i].future_tod).get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, ref_b[i]))
        << "post-swap request " << i << " differs from model B";
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(RegistryTest, ConcurrentSubmittersAcrossSwapAllCompleteExactly) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_a = TempPath("swap_conc_a.ckpt");
  const std::string path_b = TempPath("swap_conc_b.ckpt");
  SaveCandidate(config, 111, path_a);
  SaveCandidate(config, 222, path_b);
  auto model_a = LoadFrozen(config, path_a);
  auto model_b = LoadFrozen(config, path_b);

  const std::vector<RequestData> requests = MakeRequests(config, 48, 9);
  const std::vector<Tensor> ref_a = SerialReference(*model_a, requests);
  const std::vector<Tensor> ref_b = SerialReference(*model_b, requests);

  EngineOptions options;
  options.num_workers = 8;
  options.max_batch = 4;
  options.max_wait_us = 200;
  InferenceEngine engine(model_a, options);
  ModelRegistry registry(&engine, RegistryOptions{});

  std::vector<std::future<Forecast>> futures(requests.size());
  std::vector<std::thread> clients;
  const int64_t num_clients = 4;
  for (int64_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      utils::Rng rng(77 + static_cast<uint64_t>(c));
      for (size_t i = c; i < requests.size(); i += num_clients) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int64_t>(rng.Uniform(0.0, 300.0))));
        futures[i] = engine.Submit(requests[i].x, requests[i].future_tod);
      }
    });
  }
  // Land the swap in the middle of the submission storm.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  utils::Status published = registry.Publish(path_b);
  ASSERT_TRUE(published.ok()) << published.ToString();
  for (auto& client : clients) client.join();

  // Every request completed, and every forecast is byte-identical to one
  // of the two snapshots' serial references (never a blend).
  for (size_t i = 0; i < futures.size(); ++i) {
    Forecast forecast = futures[i].get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, ref_a[i]) ||
                BytesEqual(forecast.prediction, ref_b[i]))
        << "request " << i
        << " matches neither the pre- nor the post-swap model";
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.swaps, 1);

  // Once the swap has returned, new submissions always hit model B.
  Forecast after =
      engine.Submit(requests[0].x, requests[0].future_tod).get();
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_TRUE(BytesEqual(after.prediction, ref_b[0]));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(RegistryTest, InFlightBatchFinishesOnPreSwapSnapshot) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_a = TempPath("swap_inflight_a.ckpt");
  const std::string path_b = TempPath("swap_inflight_b.ckpt");
  SaveCandidate(config, 131, path_a);
  SaveCandidate(config, 232, path_b);
  auto model_a = LoadFrozen(config, path_a);
  auto model_b = LoadFrozen(config, path_b);

  const std::vector<RequestData> requests = MakeRequests(config, 4, 13);
  const std::vector<Tensor> ref_a = SerialReference(*model_a, requests);
  const std::vector<Tensor> ref_b = SerialReference(*model_b, requests);

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.max_wait_us = 0;  // grab whatever is queued immediately
  InferenceEngine engine(model_a, options);

  // swap_race holds each batch for 50 ms between pinning its snapshot
  // and computing, guaranteeing the swap below lands while the batch is
  // in flight on model A.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("swap_race@us=50000").ok());

  std::vector<std::future<Forecast>> futures;
  for (const RequestData& r : requests) {
    futures.push_back(engine.Submit(r.x, r.future_tod));
  }
  // Wait until the worker has drained the queue into a batch (the pin
  // happens immediately after), then swap inside the race window.
  while (engine.stats().queue_depth > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  utils::Status swapped = engine.SwapModel(model_b);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();

  // The in-flight batch must finish on model A: no drain, no dangling
  // futures, and bytes from the snapshot it pinned.
  for (size_t i = 0; i < futures.size(); ++i) {
    Forecast forecast = futures[i].get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, ref_a[i]))
        << "in-flight request " << i << " did not finish on the pre-swap "
        << "snapshot";
  }
  utils::FaultInjector::Global().Reset();

  // And the next batch runs on model B.
  Forecast after =
      engine.Submit(requests[0].x, requests[0].future_tod).get();
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_TRUE(BytesEqual(after.prediction, ref_b[0]));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(RegistryTest, SwapRejectsIncompatibleConfig) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(model, EngineOptions{});

  core::SagdfnConfig other = config;
  other.num_nodes = config.num_nodes + 1;
  auto incompatible = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(other)));
  utils::Status status = engine.SwapModel(incompatible);
  EXPECT_EQ(status.code(), utils::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.model_snapshot().get(), model.get());
  EXPECT_EQ(engine.stats().swaps, 0);
}

// ---------------------------------------------------------------------------
// Quality gate
// ---------------------------------------------------------------------------

TEST(RegistryTest, GateRejectsNonFiniteWeights) {
  const core::SagdfnConfig config = TinyConfig();
  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(live, EngineOptions{});
  ModelRegistry registry(&engine, RegistryOptions{});

  // A candidate whose first parameter hides one NaN.
  const std::string path = TempPath("gate_nonfinite.ckpt");
  {
    core::SagdfnModel model(config);
    auto params = model.NamedParameters();
    ASSERT_FALSE(params.empty());
    params[0].second.mutable_value().data()[0] =
        std::numeric_limits<float>::quiet_NaN();
    ASSERT_TRUE(nn::SaveModule(model, path).ok());
  }

  const FrozenModel* before = engine.model_snapshot().get();
  utils::Status status = registry.Publish(path);
  EXPECT_EQ(status.code(), utils::StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_EQ(engine.model_snapshot().get(), before)
      << "a rejected candidate must never move the live pointer";
  EXPECT_EQ(registry.stats().rejected, 1);
  EXPECT_EQ(engine.stats().swaps, 0);
  std::remove(path.c_str());
}

TEST(RegistryTest, GateRejectsTruncatedCheckpoint) {
  const core::SagdfnConfig config = TinyConfig();
  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(live, EngineOptions{});
  ModelRegistry registry(&engine, RegistryOptions{});

  const std::string path = TempPath("gate_truncated.ckpt");
  SaveCandidate(config, 303, path);
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  const FrozenModel* before = engine.model_snapshot().get();
  utils::Status status = registry.Publish(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(engine.model_snapshot().get(), before);
  EXPECT_EQ(registry.stats().rejected, 1);
  EXPECT_EQ(engine.stats().swaps, 0);
  std::remove(path.c_str());
}

TEST(RegistryTest, GateRejectsMetricRegressionAndPassesEqualCandidate) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_live = TempPath("gate_metric_live.ckpt");
  const std::string path_worse = TempPath("gate_metric_worse.ckpt");
  SaveCandidate(config, 404, path_live);
  SaveCandidate(config, 505, path_worse);
  auto live = LoadFrozen(config, path_live);

  RegistryOptions options;
  FillEvalWindows(*live, &options);
  options.max_mae_regression = 0.05;
  InferenceEngine engine(live, EngineOptions{});
  ModelRegistry registry(&engine, options);

  // Different weights -> held-out MAE > live's 0.0 -> metric gate trips.
  const FrozenModel* before = engine.model_snapshot().get();
  utils::Status worse = registry.Publish(path_worse);
  EXPECT_EQ(worse.code(), utils::StatusCode::kFailedPrecondition)
      << worse.ToString();
  EXPECT_EQ(engine.model_snapshot().get(), before);
  EXPECT_EQ(engine.stats().swaps, 0);

  // Identical weights -> MAE 0.0 == live -> passes every gate.
  utils::Status equal = registry.Publish(path_live);
  EXPECT_TRUE(equal.ok()) << equal.ToString();
  EXPECT_EQ(engine.stats().swaps, 1);
  EXPECT_EQ(registry.stats().rejected, 1);
  EXPECT_EQ(registry.stats().published, 1);
  std::remove(path_live.c_str());
  std::remove(path_worse.c_str());
}

TEST(RegistryTest, GateHonorsBadCandidateFaultSite) {
  const core::SagdfnConfig config = TinyConfig();
  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(live, EngineOptions{});
  ModelRegistry registry(&engine, RegistryOptions{});

  const std::string path = TempPath("gate_fault.ckpt");
  SaveCandidate(config, 606, path);

  ASSERT_TRUE(utils::FaultInjector::Global().Configure("bad_candidate").ok());
  const FrozenModel* before = engine.model_snapshot().get();
  utils::Status status = registry.Publish(path);
  EXPECT_EQ(status.code(), utils::StatusCode::kInternal) << status.ToString();
  EXPECT_EQ(engine.model_snapshot().get(), before);
  EXPECT_EQ(registry.stats().rejected, 1);

  // The injected failure was one-shot: the same candidate now publishes.
  utils::Status retry = registry.Publish(path);
  EXPECT_TRUE(retry.ok()) << retry.ToString();
  utils::FaultInjector::Global().Reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Health probes and rollback
// ---------------------------------------------------------------------------

TEST(RegistryTest, NanForecastProbeRollsBackWithinWindow) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_a = TempPath("health_nan_a.ckpt");
  const std::string path_b = TempPath("health_nan_b.ckpt");
  SaveCandidate(config, 707, path_a);
  SaveCandidate(config, 808, path_b);
  auto model_a = LoadFrozen(config, path_a);

  RegistryOptions options;
  options.health_window = 16;
  options.max_nonfinite = 0;
  options.p99_regression_factor = 0.0;  // isolate the NaN probe
  EngineOptions engine_options;
  engine_options.num_workers = 1;
  engine_options.max_batch = 1;
  engine_options.max_wait_us = 0;
  InferenceEngine engine(model_a, engine_options);
  ModelRegistry registry(&engine, options);

  const std::vector<RequestData> requests = MakeRequests(config, 20, 17);
  const std::vector<Tensor> ref_a = SerialReference(*model_a, requests);

  ASSERT_TRUE(registry.Publish(path_b).ok());
  const FrozenModel* published = engine.model_snapshot().get();
  ASSERT_NE(published, model_a.get());
  ASSERT_TRUE(registry.on_probation());

  // Every post-swap batch now produces NaN forecasts; the engine fails
  // those requests and the registry's probe must roll back to model A
  // well within the 16-request probation window.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("nan_forecast@prob=1").ok());
  int64_t used = 0;
  for (; used < options.health_window; ++used) {
    Forecast forecast =
        engine.Submit(requests[used].x, requests[used].future_tod).get();
    EXPECT_EQ(forecast.status.code(), utils::StatusCode::kInternal)
        << forecast.status.ToString();
    if (engine.stats().rollbacks > 0) break;
  }
  utils::FaultInjector::Global().Reset();

  EXPECT_EQ(engine.stats().rollbacks, 1)
      << "probe did not trip within the probation window";
  EXPECT_LT(used, options.health_window);
  EXPECT_EQ(registry.stats().rollbacks, 1);
  EXPECT_EQ(engine.model_snapshot().get(), model_a.get())
      << "rollback must restore the previous snapshot";
  EXPECT_FALSE(registry.on_probation());

  // Clean serving resumes on the rolled-back snapshot, byte-exact.
  Forecast after =
      engine.Submit(requests[0].x, requests[0].future_tod).get();
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_TRUE(BytesEqual(after.prediction, ref_a[0]));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(RegistryTest, SlowBatchProbeRollsBack) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_a = TempPath("health_slow_a.ckpt");
  const std::string path_b = TempPath("health_slow_b.ckpt");
  SaveCandidate(config, 909, path_a);
  SaveCandidate(config, 919, path_b);
  auto model_a = LoadFrozen(config, path_a);

  RegistryOptions options;
  options.health_window = 16;
  options.p99_regression_factor = 0.0;
  options.max_batch_compute_us = 5'000;  // 5 ms absolute ceiling
  EngineOptions engine_options;
  engine_options.num_workers = 1;
  engine_options.max_batch = 1;
  engine_options.max_wait_us = 0;
  InferenceEngine engine(model_a, engine_options);
  ModelRegistry registry(&engine, options);

  ASSERT_TRUE(registry.Publish(path_b).ok());
  ASSERT_TRUE(registry.on_probation());

  // Stall every post-swap batch well past the ceiling. The request
  // itself still succeeds — latency probes fail the model, not the
  // in-flight request.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("slow_batch@us=20000").ok());
  const std::vector<RequestData> requests = MakeRequests(config, 2, 23);
  Forecast slow =
      engine.Submit(requests[0].x, requests[0].future_tod).get();
  EXPECT_TRUE(slow.status.ok()) << slow.status.ToString();
  utils::FaultInjector::Global().Reset();

  EXPECT_EQ(engine.stats().rollbacks, 1);
  EXPECT_EQ(registry.stats().rollbacks, 1);
  EXPECT_EQ(engine.model_snapshot().get(), model_a.get());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(RegistryTest, CleanCandidatePassesProbation) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string path_b = TempPath("health_pass_b.ckpt");
  SaveCandidate(config, 121, path_b);
  auto model_a = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));

  RegistryOptions options;
  options.health_window = 8;
  options.p99_regression_factor = 0.0;
  EngineOptions engine_options;
  engine_options.num_workers = 1;
  engine_options.max_batch = 4;
  engine_options.max_wait_us = 0;
  InferenceEngine engine(model_a, engine_options);
  ModelRegistry registry(&engine, options);

  ASSERT_TRUE(registry.Publish(path_b).ok());
  ASSERT_TRUE(registry.on_probation());
  const std::vector<RequestData> requests = MakeRequests(config, 10, 29);
  for (const RequestData& r : requests) {
    Forecast forecast = engine.Submit(r.x, r.future_tod).get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
  }
  EXPECT_FALSE(registry.on_probation());
  EXPECT_EQ(registry.stats().health_passes, 1);
  EXPECT_EQ(registry.stats().rollbacks, 0);
  EXPECT_EQ(engine.stats().rollbacks, 0);
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// Deadlines and shedding
// ---------------------------------------------------------------------------

TEST(RegistryTest, QueueExpiredDeadlineRejectedOthersUnaffected) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  const std::vector<RequestData> requests = MakeRequests(config, 8, 31);
  const std::vector<Tensor> reference = SerialReference(*model, requests);

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 8;
  options.max_wait_us = 60'000'000;  // only a full batch flushes
  InferenceEngine engine(model, options);

  // Request 0 carries a 1 ms deadline and sits in the queue while the
  // worker waits for a full batch; it expires there.
  std::future<Forecast> doomed = engine.Submit(
      requests[0].x, requests[0].future_tod, std::chrono::microseconds(1000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Seven live requests complete the batch of 8 and trigger the flush.
  std::vector<std::future<Forecast>> live;
  for (size_t i = 1; i < requests.size(); ++i) {
    live.push_back(engine.Submit(requests[i].x, requests[i].future_tod));
  }

  Forecast expired = doomed.get();
  EXPECT_EQ(expired.status.code(), utils::StatusCode::kDeadlineExceeded)
      << expired.status.ToString();
  for (size_t i = 0; i < live.size(); ++i) {
    Forecast forecast = live[i].get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, reference[i + 1]))
        << "live request " << i + 1 << " affected by the expired one";
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.completed, 7);
  // The expired request was never executed: one batch of 7 ran.
  EXPECT_EQ(stats.batches, 1);
}

TEST(RegistryTest, DefaultDeadlineAppliesToPlainSubmit) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  const std::vector<RequestData> requests = MakeRequests(config, 2, 37);

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 2;
  options.max_wait_us = 60'000'000;
  options.default_deadline_us = 1'000;
  InferenceEngine engine(model, options);

  std::future<Forecast> first =
      engine.Submit(requests[0].x, requests[0].future_tod);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The second submission flushes the batch; by then the first expired.
  std::future<Forecast> second = engine.Submit(
      requests[1].x, requests[1].future_tod, std::chrono::microseconds(-1));
  EXPECT_EQ(first.get().status.code(),
            utils::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(second.get().status.ok());
  EXPECT_EQ(engine.stats().timed_out, 1);
}

TEST(RegistryTest, OverloadWatermarkShedsWithUnavailable) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  const std::vector<RequestData> requests = MakeRequests(config, 3, 41);

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 8;
  options.max_wait_us = 60'000'000;
  options.max_queue_depth = 10;
  options.shed_queue_depth = 2;
  InferenceEngine engine(model, options);

  std::vector<std::future<Forecast>> accepted;
  accepted.push_back(engine.Submit(requests[0].x, requests[0].future_tod));
  accepted.push_back(engine.Submit(requests[1].x, requests[1].future_tod));
  Forecast shed = engine.Submit(requests[2].x, requests[2].future_tod).get();
  EXPECT_EQ(shed.status.code(), utils::StatusCode::kUnavailable)
      << shed.status.ToString();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.rejected, 0) << "shedding is counted separately";
  engine.Shutdown();  // drains the two accepted requests
  for (auto& future : accepted) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

// ---------------------------------------------------------------------------
// Watched directory
// ---------------------------------------------------------------------------

TEST(RegistryTest, WatchedDirectoryPublishesNewCandidatesOnce) {
  const core::SagdfnConfig config = TinyConfig();
  const std::string dir = TempPath("registry_watch");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(live, EngineOptions{});
  RegistryOptions options;
  options.watch_dir = dir;
  ModelRegistry registry(&engine, options);

  EXPECT_EQ(registry.ScanOnce(), 0);  // empty directory

  SaveCandidate(config, 151, dir + "/candidate_b.ckpt");
  EXPECT_EQ(registry.ScanOnce(), 1);
  EXPECT_EQ(registry.stats().published, 1);
  EXPECT_EQ(registry.ScanOnce(), 0) << "a processed candidate is not retried";

  // A corrupt drop is rejected without touching the live model...
  const FrozenModel* before = engine.model_snapshot().get();
  {
    std::ofstream out(dir + "/candidate_c.ckpt", std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_EQ(registry.ScanOnce(), 0);
  EXPECT_EQ(registry.stats().rejected, 1);
  EXPECT_EQ(engine.model_snapshot().get(), before);

  // ...and a rewritten (changed size) file is picked up again.
  SaveCandidate(config, 161, dir + "/candidate_c.ckpt");
  EXPECT_EQ(registry.ScanOnce(), 1);
  EXPECT_EQ(registry.stats().published, 2);
  std::filesystem::remove_all(dir);
}

TEST(RegistryTest, WatchedDirectoryDetectsSameSizeSameMtimeRewrite) {
  // Regression: the dedup key used to be (size, mtime). A candidate
  // rewritten with identical byte size inside the filesystem's mtime
  // granularity — exactly what re-publishing a fixed-architecture
  // checkpoint produces — was silently skipped. The content fingerprint
  // in CandidateVersion must catch it.
  const core::SagdfnConfig config = TinyConfig();
  const std::string dir = TempPath("registry_watch_rewrite");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto live = std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
  InferenceEngine engine(live, EngineOptions{});
  RegistryOptions options;
  options.watch_dir = dir;
  ModelRegistry registry(&engine, options);

  const std::string path = dir + "/candidate.ckpt";
  SaveCandidate(config, 151, path);
  const auto size_first = std::filesystem::file_size(path);
  const auto mtime_first = std::filesystem::last_write_time(path);
  EXPECT_EQ(registry.ScanOnce(), 1);
  EXPECT_EQ(registry.stats().published, 1);

  // Rewrite with a different seed: same architecture, same byte size,
  // different weights. Pin the mtime back so (size, mtime) is identical
  // to the processed version — only the content differs.
  SaveCandidate(config, 152, path);
  ASSERT_EQ(std::filesystem::file_size(path), size_first)
      << "test premise broken: rewrite changed the file size";
  std::filesystem::last_write_time(path, mtime_first);

  EXPECT_EQ(registry.ScanOnce(), 1)
      << "a same-size same-mtime rewrite was not detected";
  EXPECT_EQ(registry.stats().published, 2);
  EXPECT_EQ(registry.ScanOnce(), 0)
      << "the rewritten version must itself be deduplicated";
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sagdfn::serve
