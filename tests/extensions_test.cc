// Tests for the library extensions beyond the paper's fixed setup:
// stacked encoder-decoder layers, the day-of-week covariate channel, and
// masked-loss training over missing readings.
#include <cmath>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"

namespace sagdfn {
namespace {

using tensor::Shape;
using tensor::Tensor;

core::SagdfnConfig TinyConfig(int64_t n = 10) {
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = 4;
  config.horizon = 3;
  config.convergence_iters = 5;
  return config;
}

TEST(MultiLayerTest, ForwardShapeAndParamGrowth) {
  core::SagdfnConfig one = TinyConfig();
  core::SagdfnConfig two = TinyConfig();
  two.num_layers = 2;
  core::SagdfnModel model_one(one);
  core::SagdfnModel model_two(two);
  EXPECT_GT(model_two.ParameterCount(), model_one.ParameterCount());

  utils::Rng rng(1);
  Tensor x = Tensor::Normal(Shape({2, 4, 10, 2}), rng);
  Tensor tod = Tensor::Uniform(Shape({2, 3}), rng);
  auto pred = model_two.Forward(x, tod, 0);
  EXPECT_EQ(pred.shape(), Shape({2, 3, 10}));
  EXPECT_FALSE(tensor::HasNonFinite(pred.value()));
}

TEST(MultiLayerTest, GradientsReachEveryLayer) {
  core::SagdfnConfig config = TinyConfig();
  config.num_layers = 3;
  core::SagdfnModel model(config);
  utils::Rng rng(2);
  Tensor x = Tensor::Normal(Shape({1, 4, 10, 2}), rng);
  Tensor tod = Tensor::Uniform(Shape({1, 3}), rng);
  autograd::MeanAll(autograd::Abs(model.Forward(x, tod, 0))).Backward();
  int layers_with_grad = 0;
  for (auto& [name, p] : model.NamedParameters()) {
    if (name.rfind("cell", 0) == 0 &&
        tensor::SumAll(tensor::Abs(p.grad())).Item() > 0.0f) {
      ++layers_with_grad;
    }
  }
  // Each layer contributes several parameters; all three layers must be
  // represented.
  EXPECT_GE(layers_with_grad, 3 * 4);
}

TEST(MultiLayerTest, TrainsEndToEnd) {
  data::TrafficOptions options;
  options.num_nodes = 8;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 3;
  data::ForecastDataset dataset(data::GenerateTraffic(options),
                                data::WindowSpec{4, 3});
  core::SagdfnConfig config = TinyConfig(8);
  config.num_layers = 2;
  core::SagdfnModel model(config);
  core::TrainOptions train;
  train.epochs = 2;
  train.batch_size = 8;
  train.max_train_batches_per_epoch = 5;
  train.max_eval_batches = 2;
  core::Trainer trainer(&model, &dataset, train);
  core::TrainResult result = trainer.Train();
  EXPECT_FALSE(std::isnan(result.epoch_train_loss.back()));
  EXPECT_LE(result.epoch_train_loss.back(),
            result.epoch_train_loss.front() + 0.5);
}

TEST(DayOfWeekTest, ThirdChannelPresent) {
  data::TrafficOptions options;
  options.num_nodes = 6;
  options.num_days = 8;
  options.steps_per_day = 24;
  data::WindowSpec spec{6, 3, /*include_day_of_week=*/true};
  data::ForecastDataset dataset(data::GenerateTraffic(options), spec);
  EXPECT_EQ(dataset.num_input_channels(), 3);
  data::Batch batch = dataset.GetBatch(data::Split::kTrain, 0, 2);
  EXPECT_EQ(batch.x.dim(3), 3);
  // Window 0 starts at t=0 (a Monday): day-of-week fraction 0.
  EXPECT_FLOAT_EQ(batch.x.At({0, 0, 0, 2}), 0.0f);
  // Two days later within the same window run: check a later window.
  data::Batch later = dataset.GetBatchAt(data::Split::kTrain, {48});
  // t = 48 at 24 steps/day = day 2 -> 2/7.
  EXPECT_NEAR(later.x.At({0, 0, 0, 2}), 2.0f / 7.0f, 1e-6f);
}

TEST(DayOfWeekTest, ModelConsumesThreeChannels) {
  data::TrafficOptions options;
  options.num_nodes = 8;
  options.num_days = 6;
  options.steps_per_day = 24;
  data::WindowSpec spec{4, 3, /*include_day_of_week=*/true};
  data::ForecastDataset dataset(data::GenerateTraffic(options), spec);
  core::SagdfnConfig config = TinyConfig(8);
  config.input_dim = dataset.num_input_channels();
  core::SagdfnModel model(config);
  data::Batch batch = dataset.GetBatch(data::Split::kTrain, 0, 2);
  auto pred = model.Forward(batch.x, batch.future_tod, 0);
  EXPECT_EQ(pred.shape(), Shape({2, 3, 8}));
}

TEST(MaskedLossTest, MissingReadingsDoNotTrainOrScore) {
  // A series with a dead sensor (all zeros): masked training must not
  // blow up, and the dead sensor must not affect metrics.
  data::TrafficOptions options;
  options.num_nodes = 6;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 9;
  data::TimeSeries series = data::GenerateTraffic(options);
  for (int64_t t = 0; t < series.num_steps(); ++t) {
    series.values.At({t, 2}) = 0.0f;  // dead sensor
  }
  data::ForecastDataset dataset(series, data::WindowSpec{4, 3});

  core::SagdfnConfig config = TinyConfig(6);
  core::SagdfnModel model(config);
  core::TrainOptions train;
  train.epochs = 2;
  train.batch_size = 8;
  train.max_train_batches_per_epoch = 5;
  train.max_eval_batches = 2;
  train.mask_missing = true;
  core::Trainer trainer(&model, &dataset, train);
  core::TrainResult result = trainer.Train();
  EXPECT_FALSE(std::isnan(result.epoch_train_loss.back()));

  // Metrics ignore the dead sensor entirely: corrupting its predictions
  // does not change the score.
  tensor::Tensor pred = trainer.Predict(data::Split::kTest);
  tensor::Tensor truth = trainer.Truth(data::Split::kTest);
  const double base = metrics::MaskedMae(pred, truth);
  for (int64_t s = 0; s < pred.dim(0); ++s) {
    for (int64_t t = 0; t < pred.dim(1); ++t) {
      pred.At({s, t, 2}) = 1e6f;
    }
  }
  EXPECT_DOUBLE_EQ(metrics::MaskedMae(pred, truth), base);
}

}  // namespace
}  // namespace sagdfn
