#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::core {
namespace {

data::ForecastDataset TinyDataset() {
  data::TrafficOptions options;
  options.num_nodes = 12;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 3;
  return data::ForecastDataset(data::GenerateTraffic(options),
                               data::WindowSpec{6, 3});
}

SagdfnConfig TinyModelConfig(const data::ForecastDataset& dataset) {
  SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 4;
  config.m = 6;
  config.k = 4;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.convergence_iters = 4;
  return config;
}

TrainOptions QuickOptions() {
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.learning_rate = 0.02;
  options.max_train_batches_per_epoch = 6;
  options.max_eval_batches = 3;
  return options;
}

TEST(TrainerTest, TrainingReducesLoss) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.epochs = 4;
  options.max_train_batches_per_epoch = 10;
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  ASSERT_EQ(result.epochs_run, 4);
  EXPECT_LT(result.epoch_train_loss.back(),
            result.epoch_train_loss.front());
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(TrainerTest, PredictShapesAndFiniteness) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  Trainer trainer(&model, &dataset, QuickOptions());
  trainer.Train();
  tensor::Tensor pred = trainer.Predict(data::Split::kTest);
  tensor::Tensor truth = trainer.Truth(data::Split::kTest);
  EXPECT_EQ(pred.shape(), truth.shape());
  EXPECT_EQ(pred.ndim(), 3);
  EXPECT_EQ(pred.dim(1), 3);
  EXPECT_EQ(pred.dim(2), 12);
  EXPECT_FALSE(tensor::HasNonFinite(pred));
}

TEST(TrainerTest, EvalCapRespected) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.max_eval_batches = 2;
  options.batch_size = 4;
  Trainer trainer(&model, &dataset, options);
  tensor::Tensor pred = trainer.Predict(data::Split::kValidation);
  EXPECT_EQ(pred.dim(0), 8);  // 2 batches * 4
}

TEST(TrainerTest, EvaluateSplitHorizons) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  Trainer trainer(&model, &dataset, QuickOptions());
  trainer.Train();
  auto scores = trainer.EvaluateSplit(data::Split::kTest, {1, 3});
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0].mae, 0.0);
  // Beats an absurd bound (speeds are in [3, 80]).
  EXPECT_LT(scores[0].mae, 40.0);
}

TEST(TrainerTest, BetterThanUntrainedModel) {
  data::ForecastDataset dataset = TinyDataset();

  SagdfnConfig config = TinyModelConfig(dataset);
  SagdfnModel untrained(config);
  Trainer eval_only(&untrained, &dataset, QuickOptions());
  const double untrained_mae = metrics::MaskedMae(
      eval_only.Predict(data::Split::kTest),
      eval_only.Truth(data::Split::kTest));

  SagdfnModel trained(config);
  TrainOptions options = QuickOptions();
  options.epochs = 5;
  options.max_train_batches_per_epoch = 12;
  Trainer trainer(&trained, &dataset, options);
  trainer.Train();
  const double trained_mae =
      metrics::MaskedMae(trainer.Predict(data::Split::kTest),
                         trainer.Truth(data::Split::kTest));
  EXPECT_LT(trained_mae, untrained_mae);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.epochs = 50;
  options.patience = 1;
  options.max_train_batches_per_epoch = 1;
  options.learning_rate = 0.0;  // no progress -> val plateaus immediately
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_LT(result.epochs_run, 50);
}

TEST(TrainerTest, HorizonMismatchDies) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnConfig config = TinyModelConfig(dataset);
  config.horizon = 5;  // dataset horizon is 3
  SagdfnModel model(config);
  EXPECT_DEATH(Trainer(&model, &dataset, QuickOptions()), "horizon");
}

}  // namespace
}  // namespace sagdfn::core
