#include "core/trainer.h"

#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"
#include "utils/fault.h"

namespace sagdfn::core {
namespace {

data::ForecastDataset TinyDataset() {
  data::TrafficOptions options;
  options.num_nodes = 12;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 3;
  return data::ForecastDataset(data::GenerateTraffic(options),
                               data::WindowSpec{6, 3});
}

SagdfnConfig TinyModelConfig(const data::ForecastDataset& dataset) {
  SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 4;
  config.m = 6;
  config.k = 4;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.convergence_iters = 4;
  return config;
}

TrainOptions QuickOptions() {
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.learning_rate = 0.02;
  options.max_train_batches_per_epoch = 6;
  options.max_eval_batches = 3;
  return options;
}

TEST(TrainerTest, TrainingReducesLoss) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.epochs = 4;
  options.max_train_batches_per_epoch = 10;
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  ASSERT_EQ(result.epochs_run, 4);
  EXPECT_LT(result.epoch_train_loss.back(),
            result.epoch_train_loss.front());
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(TrainerTest, PredictShapesAndFiniteness) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  Trainer trainer(&model, &dataset, QuickOptions());
  trainer.Train();
  tensor::Tensor pred = trainer.Predict(data::Split::kTest);
  tensor::Tensor truth = trainer.Truth(data::Split::kTest);
  EXPECT_EQ(pred.shape(), truth.shape());
  EXPECT_EQ(pred.ndim(), 3);
  EXPECT_EQ(pred.dim(1), 3);
  EXPECT_EQ(pred.dim(2), 12);
  EXPECT_FALSE(tensor::HasNonFinite(pred));
}

TEST(TrainerTest, EvalCapRespected) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.max_eval_batches = 2;
  options.batch_size = 4;
  Trainer trainer(&model, &dataset, options);
  tensor::Tensor pred = trainer.Predict(data::Split::kValidation);
  EXPECT_EQ(pred.dim(0), 8);  // 2 batches * 4
}

TEST(TrainerTest, EvaluateSplitHorizons) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  Trainer trainer(&model, &dataset, QuickOptions());
  trainer.Train();
  auto scores = trainer.EvaluateSplit(data::Split::kTest, {1, 3});
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0].mae, 0.0);
  // Beats an absurd bound (speeds are in [3, 80]).
  EXPECT_LT(scores[0].mae, 40.0);
}

TEST(TrainerTest, BetterThanUntrainedModel) {
  data::ForecastDataset dataset = TinyDataset();

  SagdfnConfig config = TinyModelConfig(dataset);
  SagdfnModel untrained(config);
  Trainer eval_only(&untrained, &dataset, QuickOptions());
  const double untrained_mae = metrics::MaskedMae(
      eval_only.Predict(data::Split::kTest),
      eval_only.Truth(data::Split::kTest));

  SagdfnModel trained(config);
  TrainOptions options = QuickOptions();
  options.epochs = 5;
  options.max_train_batches_per_epoch = 12;
  Trainer trainer(&trained, &dataset, options);
  trainer.Train();
  const double trained_mae =
      metrics::MaskedMae(trainer.Predict(data::Split::kTest),
                         trainer.Truth(data::Split::kTest));
  EXPECT_LT(trained_mae, untrained_mae);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.epochs = 50;
  options.patience = 1;
  options.max_train_batches_per_epoch = 1;
  options.learning_rate = 0.0;  // no progress -> val plateaus immediately
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_LT(result.epochs_run, 50);
}

TEST(TrainerTest, HorizonMismatchDies) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnConfig config = TinyModelConfig(dataset);
  config.horizon = 5;  // dataset horizon is 3
  SagdfnModel model(config);
  EXPECT_DEATH(Trainer(&model, &dataset, QuickOptions()), "horizon");
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdenticalParameters(const SagdfnModel& a,
                                  const SagdfnModel& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].first, pb[i].first);
    const tensor::Tensor& ta = pa[i].second.value();
    const tensor::Tensor& tb = pb[i].second.value();
    ASSERT_EQ(ta.shape(), tb.shape()) << pa[i].first;
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)),
              0)
        << "parameter bytes diverged: " << pa[i].first;
  }
}

// The headline fault-tolerance guarantee: kill training mid-run (injected
// crash after epoch 3's checkpoint), resume from disk in a fresh
// trainer + model, and the final parameters are byte-identical to an
// uninterrupted run — every RNG stream, Adam moment, and the SNS index
// set round-trips through the checkpoint.
TEST(TrainerTest, KillAndResumeIsBitExact) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnConfig config = TinyModelConfig(dataset);
  TrainOptions options = QuickOptions();
  options.epochs = 6;

  TrainOptions ref_options = options;
  ref_options.checkpoint_dir = FreshDir("ckpt_ref");
  SagdfnModel ref_model(config);
  Trainer ref_trainer(&ref_model, &dataset, ref_options);
  TrainResult ref_result = ref_trainer.Train();
  ASSERT_TRUE(ref_result.status.ok()) << ref_result.status.ToString();
  ASSERT_EQ(ref_result.epochs_run, 6);

  TrainOptions crash_options = options;
  crash_options.checkpoint_dir = FreshDir("ckpt_crash");
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("crash@epoch=3").ok());
  SagdfnModel crashed_model(config);
  Trainer crashed_trainer(&crashed_model, &dataset, crash_options);
  TrainResult crash_result = crashed_trainer.Train();
  utils::FaultInjector::Global().Reset();
  ASSERT_FALSE(crash_result.status.ok());
  ASSERT_EQ(crash_result.epochs_run, 3);

  const std::string latest =
      Trainer::LatestCheckpoint(crash_options.checkpoint_dir);
  ASSERT_FALSE(latest.empty());
  SagdfnModel resumed_model(config);
  Trainer resumed_trainer(&resumed_model, &dataset, crash_options);
  ASSERT_TRUE(resumed_trainer.Resume(latest).ok());
  TrainResult resumed_result = resumed_trainer.Train();
  ASSERT_TRUE(resumed_result.status.ok()) << resumed_result.status.ToString();
  ASSERT_EQ(resumed_result.epochs_run, 3);  // epochs 3, 4, 5

  // The resumed half of the training curve matches exactly (doubles
  // compared for equality on purpose: bit-exact, not approximately).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ref_result.epoch_val_mae[3 + i],
              resumed_result.epoch_val_mae[i])
        << "val curve diverged at resumed epoch " << i;
    EXPECT_EQ(ref_result.epoch_train_loss[3 + i],
              resumed_result.epoch_train_loss[i])
        << "train curve diverged at resumed epoch " << i;
  }
  ExpectBitIdenticalParameters(ref_model, resumed_model);
}

TEST(TrainerTest, ResumeRestoresOptimizerAndIterationBitExactly) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnConfig config = TinyModelConfig(dataset);
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_roundtrip");

  SagdfnModel model(config);
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  ASSERT_TRUE(result.status.ok());

  const std::string latest =
      Trainer::LatestCheckpoint(options.checkpoint_dir);
  ASSERT_FALSE(latest.empty());
  SagdfnModel fresh(config);
  Trainer resumed(&fresh, &dataset, options);
  ASSERT_TRUE(resumed.Resume(latest).ok());

  EXPECT_EQ(resumed.global_iteration(), trainer.global_iteration());
  ASSERT_NE(resumed.optimizer(), nullptr);
  EXPECT_EQ(resumed.optimizer()->step_count(),
            trainer.optimizer()->step_count());
  const auto& m1 = trainer.optimizer()->moments_m();
  const auto& v1 = trainer.optimizer()->moments_v();
  const auto& m2 = resumed.optimizer()->moments_m();
  const auto& v2 = resumed.optimizer()->moments_v();
  ASSERT_EQ(m1.size(), m2.size());
  for (size_t i = 0; i < m1.size(); ++i) {
    EXPECT_EQ(std::memcmp(m1[i].data(), m2[i].data(),
                          m1[i].size() * sizeof(float)),
              0)
        << "Adam first moment diverged for parameter " << i;
    EXPECT_EQ(std::memcmp(v1[i].data(), v2[i].data(),
                          v1[i].size() * sizeof(float)),
              0)
        << "Adam second moment diverged for parameter " << i;
  }
}

TEST(TrainerTest, CheckpointRotationKeepsLastK) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.epochs = 4;
  options.keep_last_k = 2;
  options.checkpoint_dir = FreshDir("ckpt_rotate");
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(Trainer::LatestCheckpoint(options.checkpoint_dir),
            options.checkpoint_dir + "/epoch-000004.ckpt");
  int64_t epoch_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.checkpoint_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("epoch-", 0) == 0) ++epoch_files;
  }
  EXPECT_EQ(epoch_files, 2);
  EXPECT_TRUE(std::filesystem::exists(trainer.BestCheckpointPath()));
}

TEST(TrainerTest, ResumeFromMissingCheckpointFails) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  Trainer trainer(&model, &dataset, QuickOptions());
  utils::Status status = trainer.Resume("/nonexistent/epoch-000001.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), utils::StatusCode::kNotFound);
}

TEST(TrainerTest, LatestCheckpointEmptyForMissingDir) {
  EXPECT_EQ(Trainer::LatestCheckpoint("/nonexistent-dir"), "");
}

}  // namespace
}  // namespace sagdfn::core
