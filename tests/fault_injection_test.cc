#include "utils/fault.h"

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "nn/serialization.h"
#include "tensor/tensor_ops.h"

namespace sagdfn {
namespace {

using core::SagdfnConfig;
using core::SagdfnModel;
using core::Trainer;
using core::TrainOptions;
using core::TrainResult;

data::ForecastDataset TinyDataset() {
  data::TrafficOptions options;
  options.num_nodes = 12;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 3;
  return data::ForecastDataset(data::GenerateTraffic(options),
                               data::WindowSpec{6, 3});
}

SagdfnConfig TinyModelConfig(const data::ForecastDataset& dataset) {
  SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 4;
  config.m = 6;
  config.k = 4;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.convergence_iters = 4;
  return config;
}

TrainOptions QuickOptions() {
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.learning_rate = 0.02;
  options.max_train_batches_per_epoch = 6;
  options.max_eval_batches = 3;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Guarantees every test starts and ends with a disabled injector, even
/// when an assertion fails mid-test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { utils::FaultInjector::Global().Reset(); }
  void TearDown() override { utils::FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, SpecParsing) {
  utils::FaultInjector injector;
  EXPECT_TRUE(injector.Configure("").ok());
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Configure("nan_loss@iter=7").ok());
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector
                  .Configure("nan_grad@prob=0.25; crash@epoch=3, "
                             "io_fail@save=2, truncate_ckpt, seed=99")
                  .ok());
  EXPECT_TRUE(injector.Configure("io_fail@load=1,truncate_ckpt@save=2").ok());

  EXPECT_FALSE(injector.Configure("nan_loss").ok());        // no trigger
  EXPECT_FALSE(injector.Configure("crash@iter=1").ok());    // wrong key
  EXPECT_FALSE(injector.Configure("io_fail@save=0").ok());  // 1-based
  EXPECT_FALSE(injector.Configure("nan_grad@prob=2").ok()); // p > 1
  EXPECT_FALSE(injector.Configure("bogus@iter=1").ok());    // unknown kind
  EXPECT_FALSE(injector.enabled());  // failed Configure leaves it disabled
}

TEST_F(FaultInjectionTest, IndexedRulesFireExactlyOnce) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("nan_loss@iter=3").ok());
  EXPECT_FALSE(injector.Fire(utils::FaultSite::kLoss, 2));
  EXPECT_TRUE(injector.Fire(utils::FaultSite::kLoss, 3));
  EXPECT_FALSE(injector.Fire(utils::FaultSite::kLoss, 3));  // latched
  EXPECT_FALSE(injector.Fire(utils::FaultSite::kGrad, 3));  // other site
}

TEST_F(FaultInjectionTest, CountedRulesUseOccurrenceNumbers) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("io_fail@save=2").ok());
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kSaveFail));  // 1st
  EXPECT_TRUE(injector.FireCounted(utils::FaultSite::kSaveFail));   // 2nd
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kSaveFail));  // 3rd
}

TEST_F(FaultInjectionTest, ProbabilisticRulesAreSeedDeterministic) {
  utils::FaultInjector a;
  utils::FaultInjector b;
  ASSERT_TRUE(a.Configure("nan_grad@prob=0.5,seed=7").ok());
  ASSERT_TRUE(b.Configure("nan_grad@prob=0.5,seed=7").ok());
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    const bool fa = a.Fire(utils::FaultSite::kGrad, i);
    EXPECT_EQ(fa, b.Fire(utils::FaultSite::kGrad, i)) << "probe " << i;
    fired += fa ? 1 : 0;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FaultInjectionTest, NanLossSkipsBatchAndTrainingContinues) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("nan_loss@iter=2").ok());
  Trainer trainer(&model, &dataset, QuickOptions());
  TrainResult result = trainer.Train();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.skipped_batches, 1);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_FALSE(tensor::HasNonFinite(trainer.Predict(data::Split::kTest)));
}

TEST_F(FaultInjectionTest, NanGradSkipsBatchAndTrainingContinues) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("nan_grad@iter=1").ok());
  Trainer trainer(&model, &dataset, QuickOptions());
  TrainResult result = trainer.Train();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.skipped_batches, 1);
  EXPECT_FALSE(tensor::HasNonFinite(trainer.Predict(data::Split::kTest)));
}

// Three consecutive poisoned batches trip the fault-storm threshold; the
// trainer rolls back to the last good checkpoint with a halved learning
// rate, the one-shot rules are spent, and the replayed epoch completes.
TEST_F(FaultInjectionTest, FaultStormRollsBackAndHalvesLearningRate) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_storm");
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("nan_loss@iter=0,nan_loss@iter=1,"
                             "nan_grad@iter=2")
                  .ok());
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.skipped_batches, 3);
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_EQ(result.epochs_run, 2);
  ASSERT_NE(trainer.optimizer(), nullptr);
  EXPECT_DOUBLE_EQ(trainer.optimizer()->lr(),
                   options.learning_rate * options.backoff_factor);
  EXPECT_FALSE(tensor::HasNonFinite(trainer.Predict(data::Split::kTest)));
}

// A persistent fault (every batch poisoned) must exhaust the bounded
// backoff budget and report a clear error — never abort the process or
// loop forever.
TEST_F(FaultInjectionTest, PersistentFaultExhaustsRollbackBudget) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_giveup");
  options.max_rollbacks = 2;
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("nan_loss@prob=1").ok());
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), utils::StatusCode::kFailedPrecondition);
  EXPECT_EQ(result.rollbacks, 2);
  ASSERT_NE(trainer.optimizer(), nullptr);
  EXPECT_DOUBLE_EQ(trainer.optimizer()->lr(), options.learning_rate * 0.25);
  // The model still holds finite weights (rolled back, never stepped on
  // a poisoned gradient).
  EXPECT_FALSE(tensor::HasNonFinite(trainer.Predict(data::Split::kTest)));
}

TEST_F(FaultInjectionTest, FailedCheckpointSaveDoesNotStopTraining) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_iofail");
  // Save #1 is the initial anchor, #2 is best.ckpt or epoch 1 — fail the
  // epoch-boundary one and training must shrug it off.
  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@save=3").ok());
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.checkpoint_failures, 1);
  EXPECT_EQ(result.epochs_run, 2);
  // Whatever survived on disk still parses.
  const std::string latest =
      Trainer::LatestCheckpoint(options.checkpoint_dir);
  ASSERT_FALSE(latest.empty());
  nn::Checkpoint ckpt;
  EXPECT_TRUE(nn::LoadCheckpoint(&ckpt, latest).ok());
}

TEST_F(FaultInjectionTest, TruncatedCheckpointNeverShadowsAGoodOne) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnModel model(TinyModelConfig(dataset));
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_trunc");
  ASSERT_TRUE(utils::FaultInjector::Global()
                  .Configure("truncate_ckpt@save=3")
                  .ok());
  Trainer trainer(&model, &dataset, options);
  TrainResult result = trainer.Train();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.checkpoint_failures, 1);
  // Every checkpoint left on disk must parse cleanly: the truncated one
  // failed post-write verification and was never published.
  int64_t checked = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.checkpoint_dir)) {
    nn::Checkpoint ckpt;
    EXPECT_TRUE(nn::LoadCheckpoint(&ckpt, entry.path().string()).ok())
        << entry.path();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(FaultInjectionTest, InjectedLoadFailureSurfacesAsStatus) {
  data::ForecastDataset dataset = TinyDataset();
  SagdfnConfig config = TinyModelConfig(dataset);
  TrainOptions options = QuickOptions();
  options.checkpoint_dir = FreshDir("ckpt_loadfail");
  SagdfnModel model(config);
  Trainer trainer(&model, &dataset, options);
  ASSERT_TRUE(trainer.Train().status.ok());
  const std::string latest =
      Trainer::LatestCheckpoint(options.checkpoint_dir);
  ASSERT_FALSE(latest.empty());

  ASSERT_TRUE(
      utils::FaultInjector::Global().Configure("io_fail@load=1").ok());
  SagdfnModel fresh(config);
  Trainer resumed(&fresh, &dataset, options);
  utils::Status status = resumed.Resume(latest);
  EXPECT_FALSE(status.ok());
  // The failure is an error return, not an abort; a retry succeeds.
  utils::FaultInjector::Global().Reset();
  SagdfnModel fresh2(config);
  Trainer resumed2(&fresh2, &dataset, options);
  EXPECT_TRUE(resumed2.Resume(latest).ok());
}

TEST_F(FaultInjectionTest, ServeSiteSpecsParse) {
  utils::FaultInjector injector;
  EXPECT_TRUE(injector.Configure("bad_candidate").ok());
  EXPECT_TRUE(injector.Configure("bad_candidate@publish=3").ok());
  EXPECT_TRUE(injector.Configure("nan_forecast@prob=0.5,seed=9").ok());
  EXPECT_TRUE(injector.Configure("nan_forecast@batch=2").ok());
  EXPECT_TRUE(injector.Configure("slow_batch@us=500").ok());
  EXPECT_TRUE(injector.Configure("swap_race").ok());
  EXPECT_TRUE(injector.Configure("swap_race@us=10000").ok());
  EXPECT_TRUE(
      injector.Configure("bad_candidate, slow_batch@us=100, swap_race").ok());

  EXPECT_FALSE(injector.Configure("bad_candidate@publish=0").ok());
  EXPECT_FALSE(injector.Configure("nan_forecast").ok());      // no trigger
  EXPECT_FALSE(injector.Configure("nan_forecast@prob=2").ok());
  EXPECT_FALSE(injector.Configure("slow_batch").ok());        // us required
  EXPECT_FALSE(injector.Configure("slow_batch@us=0").ok());
  EXPECT_FALSE(injector.Configure("swap_race@iter=1").ok());  // wrong key
  EXPECT_FALSE(injector.enabled());
}

TEST_F(FaultInjectionTest, BadCandidateCountsPublishes) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("bad_candidate@publish=2").ok());
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate));
  EXPECT_TRUE(injector.FireCounted(utils::FaultSite::kBadCandidate));
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate));
}

TEST_F(FaultInjectionTest, ParamSitesReturnConfiguredValue) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("slow_batch@us=750").ok());
  int64_t us = 0;
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSlowBatch, &us));
  EXPECT_EQ(us, 750);
  // Param rules are always-on, not one-shot: every batch stalls.
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSlowBatch, &us));
  // A site with no rule never fires and leaves the param untouched.
  int64_t race = -1;
  EXPECT_FALSE(injector.FireParam(utils::FaultSite::kSwapRace, &race));
  EXPECT_EQ(race, -1);

  ASSERT_TRUE(injector.Configure("swap_race").ok());
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSwapRace, &race));
  EXPECT_EQ(race, 2000);  // documented default window
}

// ---------------------------------------------------------------------------
// Tenant-qualified rules (multi-tenant serving)
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, TenantQualifiedSpecsParse) {
  utils::FaultInjector injector;
  EXPECT_TRUE(injector.Configure("nan_forecast@batch=1@tenant=carpark").ok());
  EXPECT_TRUE(injector.Configure("slow_batch@us=500@tenant=london2000").ok());
  EXPECT_TRUE(injector.Configure("bad_candidate@tenant=newyork2000").ok());
  EXPECT_TRUE(injector
                  .Configure("bad_candidate@publish=2@tenant=a, "
                             "nan_forecast@prob=0.5@tenant=b, seed=5")
                  .ok());

  // The tenant qualifier never substitutes for a required trigger.
  EXPECT_FALSE(injector.Configure("nan_forecast@tenant=x").ok());
  EXPECT_FALSE(injector.Configure("slow_batch@us=1@tenant=").ok());
  EXPECT_FALSE(injector.Configure("slow_batch@us=1@vs=2").ok());
  EXPECT_FALSE(injector.enabled());
}

TEST_F(FaultInjectionTest, TenantQualifiedRulesMatchOnlyTheirTenant) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("bad_candidate@tenant=carpark").ok());
  // A tenant-less probe (single-tenant code path) never matches a
  // qualified rule, and neither does another tenant's probe.
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate));
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate, "metr"));
  EXPECT_TRUE(
      injector.FireCounted(utils::FaultSite::kBadCandidate, "carpark"));

  int64_t us = 0;
  ASSERT_TRUE(injector.Configure("slow_batch@us=300@tenant=ldn").ok());
  EXPECT_FALSE(injector.FireParam(utils::FaultSite::kSlowBatch, &us));
  EXPECT_FALSE(injector.FireParam(utils::FaultSite::kSlowBatch, "nyc", &us));
  EXPECT_EQ(us, 0);
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSlowBatch, "ldn", &us));
  EXPECT_EQ(us, 300);
}

TEST_F(FaultInjectionTest, UnqualifiedRulesMatchEveryTenant) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("slow_batch@us=250").ok());
  int64_t us = 0;
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSlowBatch, "any", &us));
  EXPECT_EQ(us, 250);
  us = 0;
  EXPECT_TRUE(injector.FireParam(utils::FaultSite::kSlowBatch, &us));
  EXPECT_EQ(us, 250);
}

TEST_F(FaultInjectionTest, TenantCountedRulesCountOnlyMatchingProbes) {
  utils::FaultInjector injector;
  ASSERT_TRUE(injector.Configure("bad_candidate@publish=2@tenant=a").ok());
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate, "a"));
  // Another tenant's publishes do not advance tenant a's occurrence
  // count toward the trigger.
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate, "b"));
  EXPECT_TRUE(injector.FireCounted(utils::FaultSite::kBadCandidate, "a"));
  EXPECT_FALSE(injector.FireCounted(utils::FaultSite::kBadCandidate, "a"));
}

}  // namespace
}  // namespace sagdfn
