#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "utils/cli.h"
#include "utils/memory_info.h"
#include "utils/parallel.h"
#include "utils/rng.h"
#include "utils/status.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

namespace sagdfn::utils {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedish) {
  Rng rng(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementBranchesAgree) {
  // The sparse (k << n) branch must replay the dense partial
  // Fisher-Yates exactly. Same seed, same draws: the first k entries of
  // a full permutation (dense branch) ARE the k-sample, because swaps at
  // positions >= k never touch the prefix.
  for (int64_t k : {1, 10, 40}) {
    Rng sparse_rng(9), dense_rng(9);
    auto sample = sparse_rng.SampleWithoutReplacement(1000, k);
    auto perm = dense_rng.Permutation(1000);
    perm.resize(k);
    EXPECT_EQ(sample, perm) << "k=" << k;
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int64_t>(unique.size()), k);
  }
}

TEST(RngTest, PermutationCoversAll) {
  Rng rng(6);
  auto perm = rng.Permutation(50);
  std::set<int64_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::NotFound("missing"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, SplitAndTrimAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, Parsing) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_FALSE(ParseDouble("3.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("-12", &i));
  EXPECT_EQ(i, -12);
  EXPECT_FALSE(ParseInt64("12.5", &i));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatBytes(1536.0), "1.50 KiB");
  EXPECT_EQ(FormatBytes(2.0 * (1ull << 30)), "2.00 GiB");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Model", "MAE"});
  table.AddRow({"SAGDFN", "2.56"});
  table.AddRow({"A", "10.0"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Model  | MAE  |"), std::string::npos);
  EXPECT_NE(out.find("| SAGDFN | 2.56 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CliTest, ParsesFlagsAndPositionals) {
  // Note: a bare flag followed by a non-flag token consumes it as the
  // value (`--nodes 200`), so positionals must precede flags or follow a
  // `--name=value` form.
  const char* argv[] = {"prog",        "dataset1", "--alpha=1.5",
                        "--nodes",     "200",      "--quick"};
  CommandLine cli(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.GetDouble("alpha", 0.0), 1.5);
  EXPECT_TRUE(cli.GetBool("quick", false));
  EXPECT_EQ(cli.GetInt("nodes", 0), 200);
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "dataset1");
}

TEST(CliTest, EqualsFormAndBooleanValues) {
  const char* argv[] = {"prog", "--flag=false", "--other=true"};
  CommandLine cli(3, const_cast<char**>(argv));
  EXPECT_FALSE(cli.GetBool("flag", true));
  EXPECT_TRUE(cli.GetBool("other", false));
  EXPECT_TRUE(cli.Has("flag"));
  EXPECT_FALSE(cli.Has("nothere"));
}

TEST(MemoryInfoTest, ReportsPlausibleRss) {
  const int64_t rss = CurrentRssBytes();
  EXPECT_GT(rss, 1 << 20);  // more than 1 MiB
  EXPECT_GE(PeakRssBytes(), rss);
}

// -- Thread pool -------------------------------------------------------------

/// Restores the global pool size on scope exit so tests stay independent.
class ThreadCountRestorer {
 public:
  ThreadCountRestorer() : previous_(GetNumThreads()) {}
  ~ThreadCountRestorer() { SetNumThreads(previous_); }

 private:
  int64_t previous_;
};

TEST(ParallelTest, SetAndGetNumThreads) {
  ThreadCountRestorer restore;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(0);  // reset to default
  EXPECT_GE(GetNumThreads(), 1);
}

TEST(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  ThreadCountRestorer restore;
  SetNumThreads(4);
  constexpr int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, kN, /*grain=*/128, [&](int64_t b, int64_t e) {
    EXPECT_LT(b, e);
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, ParallelForInlinesBelowGrain) {
  ThreadCountRestorer restore;
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(5, 25, /*grain=*/100, [&](int64_t b, int64_t e) {
    ++calls;  // inline -> single call, no data race possible
    EXPECT_EQ(b, 5);
    EXPECT_EQ(e, 25);
    EXPECT_FALSE(ThreadPool::InParallelRegion());
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, EmptyAndSingleElementRanges) {
  ThreadCountRestorer restore;
  SetNumThreads(2);
  int calls = 0;
  ParallelFor(3, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(3, 4, 1, [&](int64_t b, int64_t e) {
    ++calls;
    EXPECT_EQ(e - b, 1);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, NestedParallelForRunsInline) {
  ThreadCountRestorer restore;
  SetNumThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 64, /*grain=*/1, [&](int64_t b, int64_t e) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested region must execute inline on this worker (exactly one
    // body call spanning the full range).
    int inner_calls = 0;
    ParallelFor(0, 1000, 1, [&](int64_t ib, int64_t ie) {
      ++inner_calls;
      EXPECT_EQ(ib, 0);
      EXPECT_EQ(ie, 1000);
    });
    EXPECT_EQ(inner_calls, 1);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelTest, ParallelFor2DTilesCoverGridExactlyOnce) {
  ThreadCountRestorer restore;
  SetNumThreads(4);
  constexpr int64_t kRows = 37;
  constexpr int64_t kCols = 513;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  for (auto& h : hits) h.store(0);
  ParallelFor2D(kRows, kCols, /*row_grain=*/4, /*col_grain=*/64,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  for (int64_t r = r0; r < r1; ++r) {
                    for (int64_t c = c0; c < c1; ++c) {
                      hits[r * kCols + c].fetch_add(1);
                    }
                  }
                });
  for (int64_t i = 0; i < kRows * kCols; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelTest, PoolIsReusableAcrossManyRegions) {
  ThreadCountRestorer restore;
  SetNumThreads(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 1024, 1, [&](int64_t b, int64_t e) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 1024 * 1023 / 2);
  }
}

}  // namespace
}  // namespace sagdfn::utils
