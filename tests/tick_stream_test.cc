// Streaming tick-loop tests (src/serve/forecast_cache): the lock-free
// per-scenario forecast cache and the TickStreamer writer.
//
// The claims under test:
//   * Carry contract: incremental ticks (O(1) encoder work, hidden state
//     carried in TickState) publish forecasts BIT-identical to eagerly
//     re-encoding every frame received since warmup, across >= 3
//     consecutive ticks.
//   * Cache invalidation: a new tick atomically replaces the slot (no
//     reader ever sees a stale forecast for a published window id), and
//     a model swap — direct SetModel or through the engine's swap
//     observer — empties the slot immediately, so no reader is served a
//     retired snapshot's forecast.
//   * Warmup: nothing is published until `history` frames arrived.
//   * Drift guard: full_reencode_every forces periodic kFull replays.
//   * Concurrent readers against one writer are race-free (this suite
//     runs under TSan via tools/check_tsan.sh) and observe monotonic
//     window ids.
#include "serve/forecast_cache.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

core::SagdfnConfig TinyConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 9;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = 5;
  config.horizon = 4;
  config.seed = 33;
  return config;
}

std::shared_ptr<const FrozenModel> MakeFrozen(const core::SagdfnConfig& config,
                                              uint64_t seed = 0) {
  core::SagdfnConfig seeded = config;
  if (seed != 0) seeded.seed = seed;
  return std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(seeded)));
}

/// A deterministic frame stream plus the tod covariates for one window.
struct Stream {
  std::vector<Tensor> frames;  // each [N, C]
  Tensor tod;                  // [f]
};

Stream MakeStream(const core::SagdfnConfig& config, int64_t ticks,
                  uint64_t seed = 11) {
  utils::Rng rng(seed);
  Stream s;
  for (int64_t i = 0; i < ticks; ++i) {
    s.frames.push_back(Tensor::Normal(
        Shape({config.num_nodes, config.input_dim}), rng));
  }
  s.tod = Tensor::Uniform(Shape({config.horizon}), rng, 0.0f, 1.0f);
  return s;
}

/// Eager reference for tick `t`: re-encode ALL frames 0..t from zero
/// init through the autograd path (the differential oracle for the
/// incremental chain). Returns [1, f, N].
Tensor EagerAccumulated(const FrozenModel& model, const Stream& stream,
                        int64_t t) {
  const core::SagdfnConfig& config = model.config();
  const int64_t frame_floats = config.num_nodes * config.input_dim;
  Tensor x{Shape({1, t + 1, config.num_nodes, config.input_dim})};
  for (int64_t i = 0; i <= t; ++i) {
    std::memcpy(x.data() + i * frame_floats, stream.frames[i].data(),
                sizeof(float) * frame_floats);
  }
  Tensor tod{Shape({1, config.horizon})};
  std::memcpy(tod.data(), stream.tod.data(),
              sizeof(float) * config.horizon);
  return model.PredictEager(x, tod);
}

/// Eager reference for a sliding h-frame window ending at tick `t`.
Tensor EagerWindow(const FrozenModel& model, const Stream& stream,
                   int64_t t) {
  const core::SagdfnConfig& config = model.config();
  const int64_t h = config.history;
  const int64_t frame_floats = config.num_nodes * config.input_dim;
  Tensor x{Shape({1, h, config.num_nodes, config.input_dim})};
  for (int64_t i = 0; i < h; ++i) {
    std::memcpy(x.data() + i * frame_floats,
                stream.frames[t - h + 1 + i].data(),
                sizeof(float) * frame_floats);
  }
  Tensor tod{Shape({1, config.horizon})};
  std::memcpy(tod.data(), stream.tod.data(),
              sizeof(float) * config.horizon);
  return model.PredictEager(x, tod);
}

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ForecastCacheTest, EmptyUntilPublished) {
  ForecastCache cache;
  EXPECT_EQ(cache.Read(), nullptr);
  const ForecastCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.reads, 1);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.publishes, 0);
}

TEST(ForecastCacheTest, PublishReadInvalidate) {
  ForecastCache cache;
  auto f = std::make_shared<TickForecast>();
  f->window_id = 7;
  cache.Publish(f);
  std::shared_ptr<const TickForecast> read = cache.Read();
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->window_id, 7);
  cache.Invalidate();
  EXPECT_EQ(cache.Read(), nullptr);
  // The reader's pinned copy survives the invalidation.
  EXPECT_EQ(read->window_id, 7);
  const ForecastCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.invalidations, 1);
}

TEST(TickStreamerTest, WarmupPublishesNothing) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const Stream stream = MakeStream(config, config.history);
  ForecastCache cache;
  TickStreamer streamer(model, &cache);
  for (int64_t t = 0; t < config.history - 1; ++t) {
    EXPECT_EQ(streamer.OnTick(stream.frames[t], stream.tod), nullptr);
    EXPECT_EQ(cache.Read(), nullptr) << "published during warmup, tick " << t;
  }
  // The h-th frame completes the first window.
  std::shared_ptr<const TickForecast> first =
      streamer.OnTick(stream.frames[config.history - 1], stream.tod);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->window_id, config.history - 1);
  EXPECT_FALSE(first->incremental) << "the first window is a full encode";
  EXPECT_EQ(cache.Read().get(), first.get());
}

TEST(TickStreamerTest, IncrementalTicksMatchAccumulatedEagerBytes) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const int64_t h = config.history;
  const int64_t ticks = h + 4;  // >= 3 consecutive incremental ticks
  const Stream stream = MakeStream(config, ticks);
  ForecastCache cache;
  TickStreamer streamer(model, &cache);

  for (int64_t t = 0; t < ticks; ++t) {
    std::shared_ptr<const TickForecast> f =
        streamer.OnTick(stream.frames[t], stream.tod);
    if (t < h - 1) {
      EXPECT_EQ(f, nullptr);
      continue;
    }
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->window_id, t);
    EXPECT_EQ(f->incremental, t > h - 1)
        << "every post-warmup tick must take the O(1) incremental path";
    const Tensor eager = EagerAccumulated(*model, stream, t);
    EXPECT_TRUE(BytesEqual(f->prediction, eager))
        << "tick " << t << " diverged from the eager accumulated re-encode";
  }
}

TEST(TickStreamerTest, DriftGuardForcesPeriodicFullReencode) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const int64_t h = config.history;
  TickStreamerOptions options;
  options.full_reencode_every = 2;
  const int64_t ticks = h + 6;
  const Stream stream = MakeStream(config, ticks);
  ForecastCache cache;
  TickStreamer streamer(model, &cache, options);

  for (int64_t t = 0; t < ticks; ++t) {
    std::shared_ptr<const TickForecast> f =
        streamer.OnTick(stream.frames[t], stream.tod);
    if (t < h - 1) continue;
    ASSERT_NE(f, nullptr);
    // Warmup full at t = h-1, then inc, inc, full, inc, inc, full, ...
    const bool expect_full = (t - (h - 1)) % 3 == 0;
    EXPECT_EQ(f->incremental, !expect_full) << "tick " << t;
    if (expect_full) {
      // A full re-encode is the sliding h-frame window from zero init.
      EXPECT_TRUE(BytesEqual(f->prediction, EagerWindow(*model, stream, t)))
          << "full re-encode at tick " << t
          << " diverged from the eager window";
    }
  }
}

TEST(TickStreamerTest, NewTickAtomicallyReplacesPublishedForecast) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const int64_t ticks = config.history + 3;
  const Stream stream = MakeStream(config, ticks);
  ForecastCache cache;
  TickStreamer streamer(model, &cache);
  for (int64_t t = 0; t < ticks; ++t) {
    streamer.OnTick(stream.frames[t], stream.tod);
    if (t < config.history - 1) continue;
    std::shared_ptr<const TickForecast> read = cache.Read();
    ASSERT_NE(read, nullptr);
    EXPECT_EQ(read->window_id, t)
        << "a reader saw a stale forecast after tick " << t << " published";
  }
}

TEST(TickStreamerTest, ModelSwapInvalidatesCacheAndForcesFullReencode) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_a = MakeFrozen(config);
  auto model_b = MakeFrozen(config, /*seed=*/77);
  const int64_t h = config.history;
  const int64_t ticks = h + 4;
  const Stream stream = MakeStream(config, ticks);
  ForecastCache cache;
  TickStreamer streamer(model_a, &cache);

  int64_t t = 0;
  for (; t < h + 2; ++t) streamer.OnTick(stream.frames[t], stream.tod);
  ASSERT_NE(cache.Read(), nullptr);
  EXPECT_TRUE(streamer.last_tick_incremental());

  streamer.SetModel(model_b);
  EXPECT_EQ(cache.Read(), nullptr)
      << "a swapped-out model's forecast stayed readable";

  // Next tick republishes on the new snapshot via a full re-encode (the
  // carried state is meaningless under new weights).
  std::shared_ptr<const TickForecast> f =
      streamer.OnTick(stream.frames[t], stream.tod);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->model.get(), model_b.get());
  EXPECT_FALSE(f->incremental);
  EXPECT_TRUE(BytesEqual(f->prediction, EagerWindow(*model_b, stream, t)));
  ++t;

  // And the tick after that is incremental again, chained on the new
  // model's exported state.
  f = streamer.OnTick(stream.frames[t], stream.tod);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->incremental);

  // Swapping to the SAME model is a no-op (no invalidation).
  const int64_t invalidations_before = cache.stats().invalidations;
  streamer.SetModel(model_b);
  EXPECT_EQ(cache.stats().invalidations, invalidations_before);
  EXPECT_NE(cache.Read(), nullptr);
}

TEST(TickStreamerTest, EngineSwapObserverInvalidatesCache) {
  const core::SagdfnConfig config = TinyConfig();
  auto model_a = MakeFrozen(config);
  auto model_b = MakeFrozen(config, /*seed=*/78);
  const int64_t h = config.history;
  const Stream stream = MakeStream(config, h + 2);
  ForecastCache cache;
  TickStreamer streamer(model_a, &cache);
  InferenceEngine engine(model_a, EngineOptions{});
  streamer.BindEngine(&engine);

  for (int64_t t = 0; t < h + 1; ++t) {
    streamer.OnTick(stream.frames[t], stream.tod);
  }
  ASSERT_NE(cache.Read(), nullptr);

  // A registry-style publish through the engine reaches the streamer
  // through the swap observer: the stale forecast vanishes immediately,
  // not at the next tick.
  ASSERT_TRUE(engine.SwapModel(model_b).ok());
  EXPECT_EQ(cache.Read(), nullptr);

  std::shared_ptr<const TickForecast> f =
      streamer.OnTick(stream.frames[h + 1], stream.tod);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->model.get(), model_b.get());
  engine.SetSwapObserver(nullptr);  // streamer dies before the engine
}

TEST(TickStreamerTest, ConcurrentReadersNeverSeeStaleOrTornForecasts) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const int64_t h = config.history;
  const int64_t ticks = h + 12;
  const Stream stream = MakeStream(config, ticks);
  ForecastCache cache;
  TickStreamer streamer(model, &cache);
  for (int64_t t = 0; t < h; ++t) {
    streamer.OnTick(stream.frames[t], stream.tod);
  }

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      int64_t last_window = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const TickForecast> f = cache.Read();
        if (f == nullptr) continue;  // never invalidated in this test
        // Window ids only move forward, and the pinned forecast is
        // immutable: its prediction matches its window id's reference.
        if (f->window_id < last_window) failures.fetch_add(1);
        last_window = f->window_id;
        if (f->prediction.size() !=
            config.horizon * config.num_nodes) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int64_t t = h; t < ticks; ++t) {
    streamer.OnTick(stream.frames[t], stream.tod);
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  // Every published window is still byte-correct vs the eager oracle.
  std::shared_ptr<const TickForecast> final_forecast = cache.Read();
  ASSERT_NE(final_forecast, nullptr);
  EXPECT_EQ(final_forecast->window_id, ticks - 1);
  EXPECT_TRUE(BytesEqual(final_forecast->prediction,
                         EagerAccumulated(*model, stream, ticks - 1)));
}

TEST(TickStreamerTest, RejectsMalformedInputs) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  ForecastCache cache;
  TickStreamer streamer(model, &cache);
  Tensor bad_frame{Shape({config.num_nodes + 1, config.input_dim})};
  Tensor tod{Shape({config.horizon})};
  EXPECT_DEATH(streamer.OnTick(bad_frame, tod), "");
  Tensor frame{Shape({config.num_nodes, config.input_dim})};
  Tensor bad_tod{Shape({config.horizon + 2})};
  EXPECT_DEATH(streamer.OnTick(frame, bad_tod), "");
}

}  // namespace
}  // namespace sagdfn::serve
