// Differential oracle for the slim (N x M) SAGDFN pipeline.
//
// Two independent references check the optimized path:
//
//  1. Forward oracles: plain double-precision loop implementations of
//     SSMA, the fast graph convolution, and the GConv-GRU cell over the
//     DENSE N x N adjacency — no SIMD, no fused kernels, no threading,
//     no autograd. The optimized float pipeline must agree to 1e-5.
//
//  2. Gradient oracles: an alternative autograd graph built from basic
//     ops only, where every slim gather (IndexSelect, fused
//     OneStepFastGConv, GruBlend) is replaced by multiplication with an
//     explicit selection matrix P [M, N] and dense matmuls. Both graphs
//     share the SAME parameter leaves, so after running Backward on
//     each (with ZeroGrad in between) their parameter and input
//     gradients must agree to 1e-5.
#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/entmax.h"
#include "core/fast_gconv.h"
#include "core/ssma.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

constexpr double kTol = 1e-5;

// ---------------------------------------------------------------------------
// Shared helpers.

std::map<std::string, ag::Variable> ParamMap(nn::Module& module) {
  std::map<std::string, ag::Variable> map;
  for (auto& [name, param] : module.NamedParameters()) {
    map.emplace(name, param);
  }
  return map;
}

/// Selection matrix P [M, N] with P[j, index_set[j]] = 1, so that
/// MatMul(P, E) == IndexSelect(E, 0, index_set) and MatMul(a_s, P) is the
/// dense N x N adjacency.
ag::Variable SelectionMatrix(const std::vector<int64_t>& index_set,
                             int64_t n) {
  Tensor p = Tensor::Zeros(
      Shape({static_cast<int64_t>(index_set.size()), n}));
  for (size_t j = 0; j < index_set.size(); ++j) {
    p.At({static_cast<int64_t>(j), index_set[j]}) = 1.0f;
  }
  return ag::Variable(p);
}

/// A shuffled distinct index set of size m over [0, n).
std::vector<int64_t> MakeIndexSet(int64_t n, int64_t m, utils::Rng& rng) {
  std::vector<int64_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(all);
  all.resize(m);
  return all;
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    worst = std::max(
        worst, std::abs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Double-precision forward references (plain loops, dense adjacency).

/// entmax along a length-n vector: same bisection as core/entmax.cc but
/// entirely in double.
std::vector<double> EntmaxRef(const std::vector<double>& z, double alpha) {
  const double am1 = alpha - 1.0;
  const double inv_am1 = 1.0 / am1;
  const double z_max = *std::max_element(z.begin(), z.end());
  double tau_lo = am1 * z_max - 1.0;
  double tau_hi = am1 * z_max;
  const auto mass = [&](double tau) {
    double total = 0.0;
    for (double zi : z) {
      const double t = am1 * zi - tau;
      if (t > 0.0) total += std::pow(t, inv_am1);
    }
    return total;
  };
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (tau_lo + tau_hi);
    if (mass(mid) >= 1.0) {
      tau_lo = mid;
    } else {
      tau_hi = mid;
    }
  }
  const double tau = 0.5 * (tau_lo + tau_hi);
  std::vector<double> p(z.size());
  double total = 0.0;
  for (size_t i = 0; i < z.size(); ++i) {
    const double t = am1 * z[i] - tau;
    p[i] = t > 0.0 ? std::pow(t, inv_am1) : 0.0;
    total += p[i];
  }
  if (total > 0.0) {
    for (double& pi : p) pi /= total;
  }
  return p;
}

/// SSMA forward in double: E_bar -> per-head FFN -> entmax over M ->
/// concat -> W_a. Parameters are read from the module's NamedParameters.
Tensor SsmaForwardRef(const std::map<std::string, ag::Variable>& params,
                      const SsmaConfig& config, const Tensor& e,
                      const std::vector<int64_t>& index_set) {
  const int64_t n = e.dim(0);
  const int64_t d = e.dim(1);
  const int64_t m = static_cast<int64_t>(index_set.size());
  const int64_t two_p = 2 * config.heads;

  // z_all[i][j][q]: entmax-normalized per-head scores, concatenated.
  std::vector<std::vector<std::vector<double>>> z_all(
      n, std::vector<std::vector<double>>(m, std::vector<double>(two_p)));
  for (int64_t p = 0; p < config.heads; ++p) {
    const Tensor& w0 =
        params.at("ffn" + std::to_string(p) + ".layer0.weight").value();
    const Tensor& b0 =
        params.at("ffn" + std::to_string(p) + ".layer0.bias").value();
    const Tensor& w1 =
        params.at("ffn" + std::to_string(p) + ".layer1.weight").value();
    const Tensor& b1 =
        params.at("ffn" + std::to_string(p) + ".layer1.bias").value();
    const int64_t ffn = w0.dim(1);

    // y[i][j][c] = FFN_p(concat(E_i, E_I[j]))
    std::vector<std::vector<std::vector<double>>> y(
        n, std::vector<std::vector<double>>(m, std::vector<double>(2)));
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        std::vector<double> e_bar(2 * d);
        for (int64_t c = 0; c < d; ++c) {
          e_bar[c] = e.At({i, c});
          e_bar[d + c] = e.At({index_set[j], c});
        }
        std::vector<double> hidden(ffn, 0.0);
        for (int64_t h = 0; h < ffn; ++h) {
          double acc = b0.At({h});
          for (int64_t c = 0; c < 2 * d; ++c) {
            acc += e_bar[c] * w0.At({c, h});
          }
          hidden[h] = std::max(0.0, acc);
        }
        for (int64_t c = 0; c < 2; ++c) {
          double acc = b1.At({c});
          for (int64_t h = 0; h < ffn; ++h) {
            acc += hidden[h] * w1.At({h, c});
          }
          y[i][j][c] = acc;
        }
      }
    }
    // entmax along the M axis, separately per (row, channel).
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < 2; ++c) {
        std::vector<double> scores(m);
        for (int64_t j = 0; j < m; ++j) scores[j] = y[i][j][c];
        const std::vector<double> probs = EntmaxRef(scores, config.alpha);
        for (int64_t j = 0; j < m; ++j) {
          z_all[i][j][2 * p + c] = probs[j];
        }
      }
    }
  }

  const Tensor& w_a = params.at("w_a").value();  // [2P, 1]
  Tensor a_s = Tensor::Zeros(Shape({n, m}));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (int64_t q = 0; q < two_p; ++q) {
        acc += z_all[i][j][q] * w_a.At({q, 0});
      }
      a_s.At({i, j}) = static_cast<float>(acc);
    }
  }
  return a_s;
}

/// Fast graph convolution in double over the dense N x N adjacency:
///   term_0 = X, term_{j+1} = (D+I)^{-1}(A term_j + term_j),
///   out = sum_j term_j W_j + b, with D_ii = sum_k |A[i, k]|.
Tensor GconvForwardRef(const std::vector<Tensor>& weights,
                       const Tensor& bias, const Tensor& a_s,
                       const std::vector<int64_t>& index_set,
                       const Tensor& x) {
  const int64_t b = x.dim(0);
  const int64_t n = x.dim(1);
  const int64_t in = x.dim(2);
  const int64_t out_dim = weights[0].dim(1);
  const int64_t m = static_cast<int64_t>(index_set.size());

  // Dense adjacency and inverse degrees.
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> inv_deg(n);
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int64_t j = 0; j < m; ++j) {
      a[i][index_set[j]] += a_s.At({i, j});
      deg += std::abs(static_cast<double>(a_s.At({i, j})));
    }
    inv_deg[i] = 1.0 / (1.0 + deg);
  }

  // term[b][i][c], updated in place per diffusion step.
  std::vector<std::vector<std::vector<double>>> term(
      b, std::vector<std::vector<double>>(n, std::vector<double>(in)));
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < in; ++c) term[bb][i][c] = x.At({bb, i, c});
    }
  }

  std::vector<std::vector<std::vector<double>>> out(
      b, std::vector<std::vector<double>>(n,
                                          std::vector<double>(out_dim, 0.0)));
  for (size_t j = 0; j < weights.size(); ++j) {
    if (j > 0) {
      auto next = term;
      for (int64_t bb = 0; bb < b; ++bb) {
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t c = 0; c < in; ++c) {
            double acc = term[bb][i][c];
            for (int64_t k = 0; k < n; ++k) {
              acc += a[i][k] * term[bb][k][c];
            }
            next[bb][i][c] = inv_deg[i] * acc;
          }
        }
      }
      term = std::move(next);
    }
    for (int64_t bb = 0; bb < b; ++bb) {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t o = 0; o < out_dim; ++o) {
          double acc = 0.0;
          for (int64_t c = 0; c < in; ++c) {
            acc += term[bb][i][c] * weights[j].At({c, o});
          }
          out[bb][i][o] += acc;
        }
      }
    }
  }

  Tensor result = Tensor::Zeros(Shape({b, n, out_dim}));
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t o = 0; o < out_dim; ++o) {
        result.At({bb, i, o}) =
            static_cast<float>(out[bb][i][o] + bias.At({o}));
      }
    }
  }
  return result;
}

std::vector<Tensor> ConvWeights(const std::map<std::string, ag::Variable>&
                                    params,
                                const std::string& prefix, int64_t steps) {
  std::vector<Tensor> weights;
  for (int64_t j = 0; j < steps; ++j) {
    weights.push_back(params.at(prefix + "w" + std::to_string(j)).value());
  }
  return weights;
}

/// GConv-GRU cell in double, composed from GconvForwardRef.
Tensor GruForwardRef(const std::map<std::string, ag::Variable>& params,
                     int64_t diffusion_steps, const Tensor& a_s,
                     const std::vector<int64_t>& index_set, const Tensor& x,
                     const Tensor& h) {
  const int64_t b = x.dim(0);
  const int64_t n = x.dim(1);
  const int64_t in = x.dim(2);
  const int64_t hd = h.dim(2);

  Tensor xh = Tensor::Zeros(Shape({b, n, in + hd}));
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < in; ++c) xh.At({bb, i, c}) = x.At({bb, i, c});
      for (int64_t c = 0; c < hd; ++c) {
        xh.At({bb, i, in + c}) = h.At({bb, i, c});
      }
    }
  }
  Tensor gates =
      GconvForwardRef(ConvWeights(params, "gates.", diffusion_steps),
                      params.at("gates.bias").value(), a_s, index_set, xh);

  Tensor x_rh = Tensor::Zeros(Shape({b, n, in + hd}));
  std::vector<std::vector<std::vector<double>>> r(
      b, std::vector<std::vector<double>>(n, std::vector<double>(hd)));
  std::vector<std::vector<std::vector<double>>> z = r;
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < hd; ++c) {
        r[bb][i][c] =
            1.0 / (1.0 + std::exp(-static_cast<double>(
                             gates.At({bb, i, c}))));
        z[bb][i][c] =
            1.0 / (1.0 + std::exp(-static_cast<double>(
                             gates.At({bb, i, hd + c}))));
      }
      for (int64_t c = 0; c < in; ++c) {
        x_rh.At({bb, i, c}) = x.At({bb, i, c});
      }
      for (int64_t c = 0; c < hd; ++c) {
        x_rh.At({bb, i, in + c}) =
            static_cast<float>(r[bb][i][c] * h.At({bb, i, c}));
      }
    }
  }
  Tensor candidate = GconvForwardRef(
      ConvWeights(params, "candidate.", diffusion_steps),
      params.at("candidate.bias").value(), a_s, index_set, x_rh);

  Tensor out = Tensor::Zeros(Shape({b, n, hd}));
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < hd; ++c) {
        const double cand = std::tanh(candidate.At({bb, i, c}));
        out.At({bb, i, c}) = static_cast<float>(
            z[bb][i][c] * h.At({bb, i, c}) +
            (1.0 - z[bb][i][c]) * cand);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dense autograd graphs from basic ops (the gradient oracle).

/// FastGraphConv as a dense basic-op graph: A_dense = a_s P, diffusion by
/// BatchedMatMul, degree via Sum(Abs(...)). No fused kernels.
ag::Variable DenseConvGraph(const std::vector<ag::Variable>& weights,
                            const ag::Variable& bias,
                            const ag::Variable& a_dense,
                            const ag::Variable& inv_deg,
                            const ag::Variable& x) {
  ag::Variable term = x;
  ag::Variable out = ag::BatchedMatMul(term, weights[0]);
  for (size_t j = 1; j < weights.size(); ++j) {
    term = ag::Mul(inv_deg,
                   ag::Add(ag::BatchedMatMul(a_dense, term), term));
    out = ag::Add(out, ag::BatchedMatMul(term, weights[j]));
  }
  return ag::Add(out, bias);
}

ag::Variable DenseInverseDegree(const ag::Variable& a_dense) {
  return ag::Div(
      ag::Variable(Tensor::Ones(Shape({a_dense.dim(0), 1}))),
      ag::AddScalar(ag::Sum(ag::Abs(a_dense), 1, /*keepdim=*/true), 1.0f));
}

/// GConvGruCell as a dense basic-op graph (unfused blend:
/// z*h + (1-z)*candidate).
ag::Variable DenseGruGraph(const std::map<std::string, ag::Variable>& params,
                           int64_t diffusion_steps,
                           const ag::Variable& a_dense,
                           const ag::Variable& x, const ag::Variable& h) {
  const int64_t hd = h.dim(2);
  std::vector<ag::Variable> gate_w, cand_w;
  for (int64_t j = 0; j < diffusion_steps; ++j) {
    gate_w.push_back(params.at("gates.w" + std::to_string(j)));
    cand_w.push_back(params.at("candidate.w" + std::to_string(j)));
  }
  ag::Variable inv_deg = DenseInverseDegree(a_dense);

  ag::Variable xh = ag::Concat({x, h}, 2);
  ag::Variable gates = DenseConvGraph(gate_w, params.at("gates.bias"),
                                      a_dense, inv_deg, xh);
  ag::Variable r = ag::Sigmoid(ag::Slice(gates, 2, 0, hd));
  ag::Variable z = ag::Sigmoid(ag::Slice(gates, 2, hd, 2 * hd));
  ag::Variable x_rh = ag::Concat({x, ag::Mul(r, h)}, 2);
  ag::Variable candidate =
      ag::Tanh(DenseConvGraph(cand_w, params.at("candidate.bias"), a_dense,
                              inv_deg, x_rh));
  return ag::Add(ag::Mul(z, h),
                 ag::Mul(ag::RSubScalar(z, 1.0f), candidate));
}

/// SSMA as a dense basic-op graph: the gather is MatMul(P, E); the Mlp is
/// spelled out as matmul + bias + relu. Heads run sequentially (no
/// ParallelFor). Entmax is the same mathematical op both pipelines share.
ag::Variable DenseSsmaGraph(const std::map<std::string, ag::Variable>&
                                params,
                            const SsmaConfig& config, const ag::Variable& e,
                            const ag::Variable& selection) {
  const int64_t n = e.dim(0);
  const int64_t d = e.dim(1);
  const int64_t m = selection.dim(0);

  ag::Variable e_rows =
      ag::Expand(ag::Reshape(e, {n, 1, d}), Shape({n, m, d}));
  ag::Variable e_neighbors = ag::Expand(
      ag::Reshape(ag::MatMul(selection, e), {1, m, d}), Shape({n, m, d}));
  ag::Variable e_bar = ag::Concat({e_rows, e_neighbors}, 2);

  std::vector<ag::Variable> heads;
  for (int64_t p = 0; p < config.heads; ++p) {
    const std::string prefix = "ffn" + std::to_string(p) + ".";
    ag::Variable hidden = ag::Relu(
        ag::Add(ag::BatchedMatMul(e_bar, params.at(prefix + "layer0.weight")),
                params.at(prefix + "layer0.bias")));
    ag::Variable y =
        ag::Add(ag::BatchedMatMul(hidden, params.at(prefix + "layer1.weight")),
                params.at(prefix + "layer1.bias"));
    heads.push_back(config.use_entmax ? Entmax(y, config.alpha, /*axis=*/1)
                                      : ag::Softmax(y, /*axis=*/1));
  }
  ag::Variable z_all = ag::Concat(heads, 2);
  return ag::Reshape(ag::BatchedMatMul(z_all, params.at("w_a")), {n, m});
}

/// loss = sum(out * probe) with a fixed random probe, so every output
/// element contributes a distinct weight to the gradient.
ag::Variable ProbeLoss(const ag::Variable& out, uint64_t seed) {
  utils::Rng rng(seed);
  return ag::SumAll(ag::Mul(
      out, ag::Variable(Tensor::Uniform(out.shape(), rng, -1.0f, 1.0f))));
}

// ---------------------------------------------------------------------------
// Forward oracle tests.

TEST(DenseOracleTest, SsmaForwardMatchesDoubleReference) {
  struct Case {
    int64_t n, m, heads;
    float alpha;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 1, 1.5f, 1},  {13, 9, 2, 2.0f, 2},  {32, 32, 3, 1.3f, 3},
      {7, 3, 2, 1.5f, 4},  {32, 32, 2, 1.5f, 5},
  };
  for (const Case& c : cases) {
    SsmaConfig config;
    config.embedding_dim = 6;
    config.m = c.m;
    config.heads = c.heads;
    config.ffn_hidden = 5;
    config.alpha = c.alpha;
    utils::Rng rng(c.seed);
    SparseSpatialAttention ssma(config, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    Tensor e = Tensor::Normal(Shape({c.n, config.embedding_dim}), rng);

    ag::NoGradGuard guard;
    Tensor optimized = ssma.Forward(ag::Variable(e), index_set).value();
    Tensor reference =
        SsmaForwardRef(ParamMap(ssma), config, e, index_set);
    EXPECT_LT(MaxAbsDiff(optimized, reference), kTol)
        << "N=" << c.n << " M=" << c.m << " heads=" << c.heads
        << " alpha=" << c.alpha << " seed=" << c.seed;
  }
}

TEST(DenseOracleTest, FastGraphConvForwardMatchesDoubleReference) {
  struct Case {
    int64_t n, m, in, out, steps, batch;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 3, 4, 1, 1, 11}, {13, 13, 7, 5, 2, 3, 12},
      {32, 32, 4, 6, 3, 2, 13}, {9, 4, 1, 1, 2, 5, 14},
  };
  for (const Case& c : cases) {
    utils::Rng rng(c.seed);
    FastGraphConv conv(c.in, c.out, c.steps, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    Tensor a_s = Tensor::Normal(Shape({c.n, c.m}), rng);
    Tensor x = Tensor::Normal(Shape({c.batch, c.n, c.in}), rng);

    ag::NoGradGuard guard;
    Tensor optimized =
        conv.Forward(ag::Variable(a_s), index_set, ag::Variable(x)).value();
    Tensor reference =
        GconvForwardRef(ConvWeights(ParamMap(conv), "", c.steps),
                        ParamMap(conv).at("bias").value(), a_s, index_set,
                        x);
    EXPECT_LT(MaxAbsDiff(optimized, reference), kTol)
        << "N=" << c.n << " M=" << c.m << " J=" << c.steps
        << " seed=" << c.seed;
  }
}

TEST(DenseOracleTest, GruCellForwardMatchesDoubleReference) {
  struct Case {
    int64_t n, m, in, hidden, steps, batch;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 2, 3, 2, 1, 21}, {13, 13, 3, 6, 2, 2, 22},
      {32, 32, 2, 4, 3, 2, 23}, {11, 7, 5, 2, 1, 3, 24},
  };
  for (const Case& c : cases) {
    utils::Rng rng(c.seed);
    GConvGruCell cell(c.in, c.hidden, c.steps, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    Tensor a_s = Tensor::Normal(Shape({c.n, c.m}), rng);
    Tensor x = Tensor::Normal(Shape({c.batch, c.n, c.in}), rng);
    Tensor h = Tensor::Normal(Shape({c.batch, c.n, c.hidden}), rng);

    ag::NoGradGuard guard;
    Tensor optimized = cell.Forward(ag::Variable(a_s), index_set,
                                    ag::Variable(x), ag::Variable(h))
                           .value();
    Tensor reference = GruForwardRef(ParamMap(cell), c.steps, a_s,
                                     index_set, x, h);
    EXPECT_LT(MaxAbsDiff(optimized, reference), kTol)
        << "N=" << c.n << " M=" << c.m << " J=" << c.steps
        << " seed=" << c.seed;
  }
}

// ---------------------------------------------------------------------------
// Gradient oracle tests. Both graphs share the module's parameter leaves;
// Backward runs on each with ZeroGrad in between, and every gradient
// (parameters AND inputs) must agree.

TEST(DenseOracleTest, FastGraphConvGradientsMatchDenseGraph) {
  struct Case {
    int64_t n, m, in, out, steps, batch;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 3, 4, 2, 2, 31}, {13, 13, 4, 3, 3, 1, 32},
      {32, 32, 2, 5, 2, 2, 33}, {9, 5, 3, 3, 2, 3, 34},
  };
  for (const Case& c : cases) {
    utils::Rng rng(c.seed);
    FastGraphConv conv(c.in, c.out, c.steps, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    ag::Variable a_s(Tensor::Normal(Shape({c.n, c.m}), rng),
                     /*requires_grad=*/true);
    ag::Variable x(Tensor::Normal(Shape({c.batch, c.n, c.in}), rng),
                   /*requires_grad=*/true);
    std::map<std::string, ag::Variable> params = ParamMap(conv);

    // Slim pipeline (fused OneStepFastGConv).
    ProbeLoss(conv.Forward(a_s, index_set, x), c.seed).Backward();
    std::map<std::string, Tensor> slim_grads;
    for (auto& [name, p] : params) {
      slim_grads.emplace(name, p.grad().Clone());
      p.ZeroGrad();
    }
    Tensor slim_a_grad = a_s.grad().Clone();
    Tensor slim_x_grad = x.grad().Clone();
    a_s.ZeroGrad();
    x.ZeroGrad();

    // Dense basic-op pipeline.
    ag::Variable a_dense =
        ag::MatMul(a_s, SelectionMatrix(index_set, c.n));
    std::vector<ag::Variable> weights;
    for (int64_t j = 0; j < c.steps; ++j) {
      weights.push_back(params.at("w" + std::to_string(j)));
    }
    ag::Variable dense_out = DenseConvGraph(
        weights, params.at("bias"), a_dense, DenseInverseDegree(a_dense), x);
    ProbeLoss(dense_out, c.seed).Backward();

    for (auto& [name, p] : params) {
      EXPECT_LT(MaxAbsDiff(p.grad(), slim_grads.at(name)), kTol)
          << "param " << name << " seed=" << c.seed;
      p.ZeroGrad();
    }
    EXPECT_LT(MaxAbsDiff(a_s.grad(), slim_a_grad), kTol)
        << "a_s seed=" << c.seed;
    EXPECT_LT(MaxAbsDiff(x.grad(), slim_x_grad), kTol)
        << "x seed=" << c.seed;
  }
}

TEST(DenseOracleTest, GruCellGradientsMatchDenseGraph) {
  struct Case {
    int64_t n, m, in, hidden, steps, batch;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 2, 3, 2, 2, 41}, {13, 13, 3, 4, 2, 1, 42},
      {32, 32, 2, 3, 3, 2, 43},
  };
  for (const Case& c : cases) {
    utils::Rng rng(c.seed);
    GConvGruCell cell(c.in, c.hidden, c.steps, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    ag::Variable a_s(Tensor::Normal(Shape({c.n, c.m}), rng),
                     /*requires_grad=*/true);
    ag::Variable x(Tensor::Normal(Shape({c.batch, c.n, c.in}), rng),
                   /*requires_grad=*/true);
    ag::Variable h(Tensor::Normal(Shape({c.batch, c.n, c.hidden}), rng),
                   /*requires_grad=*/true);
    std::map<std::string, ag::Variable> params = ParamMap(cell);

    ProbeLoss(cell.Forward(a_s, index_set, x, h), c.seed).Backward();
    std::map<std::string, Tensor> slim_grads;
    for (auto& [name, p] : params) {
      slim_grads.emplace(name, p.grad().Clone());
      p.ZeroGrad();
    }
    Tensor slim_a_grad = a_s.grad().Clone();
    Tensor slim_x_grad = x.grad().Clone();
    Tensor slim_h_grad = h.grad().Clone();
    a_s.ZeroGrad();
    x.ZeroGrad();
    h.ZeroGrad();

    ag::Variable a_dense =
        ag::MatMul(a_s, SelectionMatrix(index_set, c.n));
    ProbeLoss(DenseGruGraph(params, c.steps, a_dense, x, h), c.seed)
        .Backward();

    for (auto& [name, p] : params) {
      EXPECT_LT(MaxAbsDiff(p.grad(), slim_grads.at(name)), kTol)
          << "param " << name << " seed=" << c.seed;
      p.ZeroGrad();
    }
    EXPECT_LT(MaxAbsDiff(a_s.grad(), slim_a_grad), kTol)
        << "a_s seed=" << c.seed;
    EXPECT_LT(MaxAbsDiff(x.grad(), slim_x_grad), kTol)
        << "x seed=" << c.seed;
    EXPECT_LT(MaxAbsDiff(h.grad(), slim_h_grad), kTol)
        << "h seed=" << c.seed;
  }
}

TEST(DenseOracleTest, SsmaGradientsMatchDenseGraph) {
  struct Case {
    int64_t n, m, heads;
    float alpha;
    uint64_t seed;
  };
  const Case cases[] = {
      {5, 5, 2, 1.5f, 51}, {13, 9, 1, 2.0f, 52}, {32, 32, 2, 1.5f, 53},
  };
  for (const Case& c : cases) {
    SsmaConfig config;
    config.embedding_dim = 5;
    config.m = c.m;
    config.heads = c.heads;
    config.ffn_hidden = 4;
    config.alpha = c.alpha;
    utils::Rng rng(c.seed);
    SparseSpatialAttention ssma(config, rng);
    const std::vector<int64_t> index_set = MakeIndexSet(c.n, c.m, rng);
    ag::Variable e(Tensor::Normal(Shape({c.n, config.embedding_dim}), rng),
                   /*requires_grad=*/true);
    std::map<std::string, ag::Variable> params = ParamMap(ssma);

    ProbeLoss(ssma.Forward(e, index_set), c.seed).Backward();
    std::map<std::string, Tensor> slim_grads;
    for (auto& [name, p] : params) {
      slim_grads.emplace(name, p.grad().Clone());
      p.ZeroGrad();
    }
    Tensor slim_e_grad = e.grad().Clone();
    e.ZeroGrad();

    ProbeLoss(DenseSsmaGraph(params, config, e,
                             SelectionMatrix(index_set, c.n)),
              c.seed)
        .Backward();

    for (auto& [name, p] : params) {
      EXPECT_LT(MaxAbsDiff(p.grad(), slim_grads.at(name)), kTol)
          << "param " << name << " seed=" << c.seed;
      p.ZeroGrad();
    }
    EXPECT_LT(MaxAbsDiff(e.grad(), slim_e_grad), kTol)
        << "embeddings seed=" << c.seed;
  }
}

}  // namespace
}  // namespace sagdfn::core
