// Reproduces paper Table II: statistics of the four evaluation datasets
// (here: their simulated stand-ins; see DESIGN.md for the substitution
// rationale). Also verifies that generation matches the declared
// statistics.
#include <iostream>

#include "bench_common.h"
#include "tensor/tensor_ops.h"
#include "utils/string_util.h"

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader("Table II: statistics of the datasets", config);

  utils::TablePrinter table({"Data type", "Dataset", "# of sensors",
                             "# of steps", "steps/day", "Time range",
                             "value range"});
  for (const auto& name : data::KnownDatasets()) {
    data::DatasetInfo info = data::GetDatasetInfo(name, config.scale());
    data::TimeSeries series = data::MakeDataset(name, config.scale());
    table.AddRow(
        {info.data_type, info.name, std::to_string(info.num_nodes),
         std::to_string(series.num_steps()),
         std::to_string(info.steps_per_day), info.time_range,
         "[" + utils::FormatDouble(tensor::MinAll(series.values), 1) +
             ", " + utils::FormatDouble(tensor::MaxAll(series.values), 1) +
             "]"});
  }
  std::cout << table.ToString();
  std::cout << "\nPaper full-scale reference: METR-LA 207 sensors (5-min), "
               "London2000/NewYork2000 2000 segments (hourly), "
               "CARPARK1918 1918 carparks (5-min).\n";
  return 0;
}
