// Reproduces paper Figure 3: hyper-parameter study — (a) entmax alpha and
// (b) attention-head count on METR-LA, (c) significant-neighbor count M
// on CARPARK1918 (simulated stand-ins). Each point trains one SAGDFN.
#include <iostream>

#include "bench_common.h"
#include "core/sagdfn.h"

namespace sagdfn::bench {
namespace {

double TrainAndScore(const data::ForecastDataset& dataset,
                     const BenchConfig& config,
                     const baselines::ModelSizing& sizing) {
  auto forecaster = baselines::MakeSagdfnForecaster(
      "SAGDFN", sizing, [](core::SagdfnConfig*) {});
  ModelRun run = RunForecaster(*forecaster, dataset, config, {3});
  return run.horizon_scores[0].mae;
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  if (!config.full) {
    if (config.max_nodes == 0) config.max_nodes = 128;
    if (config.epochs == 0) config.epochs = 4;
    if (config.max_train_batches == 0) config.max_train_batches = 15;
  }
  bench::PrintHeader("Figure 3: hyper-parameter study", config);

  // (a) alpha sweep on METR-LA.
  {
    data::ForecastDataset dataset =
        bench::LoadDataset("metr-la-sim", config);
    utils::TablePrinter table({"alpha", "METR-LA H3 MAE"});
    for (float alpha : {1.0f, 1.5f, 2.0f, 2.5f}) {
      baselines::ModelSizing sizing = bench::MakeModelSizing(config);
      sizing.alpha = alpha;
      table.AddRow({utils::FormatDouble(alpha, 1),
                    utils::FormatDouble(
                        bench::TrainAndScore(dataset, config, sizing), 2)});
      std::cerr << "[done] alpha=" << alpha << "\n";
    }
    std::cout << "(a) entmax alpha (paper optimum: 2.0)\n"
              << table.ToString() << "\n";
  }

  // (b) heads sweep on METR-LA.
  {
    data::ForecastDataset dataset =
        bench::LoadDataset("metr-la-sim", config);
    utils::TablePrinter table({"heads", "METR-LA H3 MAE"});
    std::vector<int64_t> heads =
        config.full ? std::vector<int64_t>{1, 2, 4, 8}
                    : std::vector<int64_t>{1, 2, 4};
    for (int64_t p : heads) {
      baselines::ModelSizing sizing = bench::MakeModelSizing(config);
      sizing.sagdfn_heads = p;
      table.AddRow({std::to_string(p),
                    utils::FormatDouble(
                        bench::TrainAndScore(dataset, config, sizing), 2)});
      std::cerr << "[done] heads=" << p << "\n";
    }
    std::cout << "(b) attention heads (paper optimum: 8)\n"
              << table.ToString() << "\n";
  }

  // (c) M sweep on CARPARK1918.
  {
    data::ForecastDataset dataset =
        bench::LoadDataset("carpark1918-sim", config);
    utils::TablePrinter table({"M", "CARPARK1918 H3 MAE"});
    std::vector<int64_t> m_values =
        config.full ? std::vector<int64_t>{25, 50, 100, 150, 200}
                    : std::vector<int64_t>{4, 8, 16, 32};
    for (int64_t m : m_values) {
      baselines::ModelSizing sizing = bench::MakeModelSizing(config);
      sizing.sagdfn_m = m;
      sizing.sagdfn_k = std::max<int64_t>(1, (m * 4) / 5);
      table.AddRow({std::to_string(m),
                    utils::FormatDouble(
                        bench::TrainAndScore(dataset, config, sizing), 2)});
      std::cerr << "[done] M=" << m << "\n";
    }
    std::cout << "(c) significant-neighbor count M\n"
              << table.ToString() << "\n";
  }

  std::cout << "Expected shape (paper Fig. 3): MAE improves then "
               "plateaus/worsens with alpha (optimum ~2.0); more heads "
               "help; M improves early then saturates.\n";
  return 0;
}
