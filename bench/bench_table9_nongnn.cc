// Reproduces paper Table IX: SAGDFN vs non-GNN long-sequence forecasters
// (TimesNet / FEDformer / ETSformer stand-ins) on METR-LA and
// CARPARK1918 (simulated).
#include <iostream>

#include "bench_common.h"

namespace sagdfn::bench {
namespace {

void RunOne(const std::string& dataset_name, const BenchConfig& config) {
  data::ForecastDataset dataset = LoadDataset(dataset_name, config);
  std::cout << dataset_name << " (" << dataset.num_nodes()
            << " nodes)\n";
  const std::vector<int64_t> horizons = {3, 6, 12};
  utils::TablePrinter table({dataset_name, "H3 MAE", "H3 RMSE", "H3 MAPE",
                             "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE"});
  std::vector<std::string> models = baselines::NonGnnBaselineNames();
  models.push_back("SAGDFN");
  for (const auto& name : models) {
    ModelRun run = RunModel(name, dataset, config, horizons);
    AddScoreRow(table, run, horizons.size());
    std::cerr << "[done] " << name << " on " << dataset_name << "\n";
  }
  std::cout << table.ToString() << "\n";
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Table IX: comparison with non-GNN-based methods", config);
  bench::RunOne("metr-la-sim", config);
  bench::RunOne("carpark1918-sim", config);
  std::cout << "Expected shape (paper): the temporal-only transformers "
               "trail SAGDFN on spatially-correlated data because they "
               "cannot exchange information between series.\n";
  return 0;
}
