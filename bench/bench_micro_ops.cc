// Google-benchmark micro-benchmarks for the kernels behind the paper's
// complexity claims: matmul, entmax, SNS sampling, slim vs dense graph
// diffusion, and a full SAGDFN forward step — plus thread-count sweeps
// over the parallel backend (utils::ParallelFor).
//
// Results are written to BENCH_micro_ops.json (benchmark's JSON format)
// by default so the perf trajectory is machine-readable across PRs; pass
// your own --benchmark_out= to override.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/entmax.h"
#include "core/sagdfn.h"
#include "core/sns.h"
#include "obs/telemetry.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "utils/arena.h"
#include "utils/block_reduce.h"
#include "utils/check.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

/// Applies the benchmark's thread-count argument (0 means "default":
/// SAGDFN_NUM_THREADS env var or hardware concurrency) and restores the prior
/// pool size on destruction (so interleaved benchmarks stay independent).
class BenchThreadScope {
 public:
  explicit BenchThreadScope(benchmark::State& state, int64_t threads)
      : previous_(utils::GetNumThreads()) {
    utils::SetNumThreads(threads);
    state.counters["threads"] =
        static_cast<double>(utils::GetNumThreads());
  }
  ~BenchThreadScope() { utils::SetNumThreads(previous_); }

 private:
  int64_t previous_;
};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  utils::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  tensor::Tensor b = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

// Thread scaling of the blocked parallel MatMul. The 2048 point is the
// acceptance shape for the parallel backend (expect >= 3x at 4 threads on
// hardware with >= 4 cores; on fewer cores the sweep simply documents the
// machine's ceiling — `threads` reports the actual pool size).
void BM_MatMulThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchThreadScope scope(state, state.range(1));
  utils::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  tensor::Tensor b = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 0})
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 0})
    ->Args({2048, 1})->Args({2048, 2})->Args({2048, 4})->Args({2048, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Small-batch batched matmul: parallelism must come from batch x rows,
// not batch alone (batch = 4 would cap speedup at 4).
void BM_BatchedMatMulThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchThreadScope scope(state, state.range(1));
  utils::Rng rng(2);
  tensor::Tensor a =
      tensor::Tensor::Normal(tensor::Shape({4, n, 64}), rng);
  tensor::Tensor b = tensor::Tensor::Normal(tensor::Shape({64, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::BatchedMatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * 64 * 64);
}
BENCHMARK(BM_BatchedMatMulThreads)
    ->ArgNames({"n", "threads"})
    ->Args({512, 1})->Args({512, 2})->Args({512, 4})->Args({512, 0})
    ->Args({2048, 1})->Args({2048, 2})->Args({2048, 4})->Args({2048, 0})
    ->UseRealTime();

// The fast-gconv hot path (slim diffusion gather + product + add) under
// the thread sweep, at the paper's large-graph scale.
void BM_SlimDiffusionThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  BenchThreadScope scope(state, state.range(1));
  const int64_t m = 20;
  const int64_t channels = 16;
  utils::Rng rng(3);
  tensor::Tensor a = tensor::Tensor::Uniform(tensor::Shape({n, m}), rng);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, n, channels}), rng);
  std::vector<int64_t> index_set(m);
  for (int64_t i = 0; i < m; ++i) index_set[i] = i;
  for (auto _ : state) {
    tensor::Tensor gathered = tensor::IndexSelect(x, 1, index_set);
    benchmark::DoNotOptimize(
        tensor::Add(tensor::BatchedMatMul(a, gathered), x));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * m * channels);
}
BENCHMARK(BM_SlimDiffusionThreads)
    ->ArgNames({"n", "threads"})
    ->Args({2048, 1})->Args({2048, 2})->Args({2048, 4})->Args({2048, 0})
    ->UseRealTime();

void BM_EntmaxForward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const float alpha = static_cast<float>(state.range(1)) / 10.0f;
  utils::Rng rng(2);
  tensor::Tensor z =
      tensor::Tensor::Normal(tensor::Shape({rows, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntmaxForward(z, alpha, 1));
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_EntmaxForward)
    ->Args({256, 10})   // alpha = 1.0 (softmax fast path)
    ->Args({256, 15})   // alpha = 1.5 (bisection)
    ->Args({256, 20});  // alpha = 2.0

void BM_EntmaxBackward(benchmark::State& state) {
  utils::Rng rng(3);
  tensor::Tensor z =
      tensor::Tensor::Normal(tensor::Shape({256, 64}), rng);
  tensor::Tensor p = core::EntmaxForward(z, 1.5f, 1);
  tensor::Tensor g =
      tensor::Tensor::Normal(tensor::Shape({256, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntmaxBackward(p, g, 1.5f, 1));
  }
}
BENCHMARK(BM_EntmaxBackward);

void BM_SignificantNeighborSampling(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::SignificantNeighborSampler sampler(n, 20, 16, 4);
  utils::Rng rng(5);
  tensor::Tensor e = tensor::Tensor::Normal(tensor::Shape({n, 16}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(e, true));
  }
  state.SetItemsProcessed(state.iterations() * n * 20);
}
BENCHMARK(BM_SignificantNeighborSampling)->Arg(256)->Arg(1024)->Arg(2048);

// The paper's central cost contrast: one diffusion application with a
// slim [N, M] adjacency vs a dense [N, N] adjacency.
void BM_SlimDiffusion(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t m = 20;
  const int64_t channels = 16;
  utils::Rng rng(6);
  tensor::Tensor a =
      tensor::Tensor::Uniform(tensor::Shape({n, m}), rng);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, n, channels}), rng);
  std::vector<int64_t> index_set(m);
  for (int64_t i = 0; i < m; ++i) index_set[i] = i;
  for (auto _ : state) {
    tensor::Tensor gathered = tensor::IndexSelect(x, 1, index_set);
    benchmark::DoNotOptimize(
        tensor::Add(tensor::BatchedMatMul(a, gathered), x));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * m * channels);
}
BENCHMARK(BM_SlimDiffusion)->Arg(256)->Arg(1024)->Arg(2048);

void BM_DenseDiffusion(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t channels = 16;
  utils::Rng rng(7);
  tensor::Tensor a = tensor::Tensor::Uniform(tensor::Shape({n, n}), rng);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, n, channels}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tensor::Add(tensor::BatchedMatMul(a, x), x));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * channels);
}
BENCHMARK(BM_DenseDiffusion)->Arg(256)->Arg(1024);

void BM_SagdfnForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 8;
  config.m = 16;
  config.k = 12;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;
  core::SagdfnModel model(config);
  utils::Rng rng(8);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, 12, n, 2}), rng);
  tensor::Tensor tod =
      tensor::Tensor::Uniform(tensor::Shape({4, 12}), rng);
  autograd::NoGradGuard guard;
  model.SetTraining(false);
  model.Forward(x, tod, 0);  // warm up / fix the index set
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, tod, 0));
  }
}
BENCHMARK(BM_SagdfnForward)->Arg(64)->Arg(256);

// METR-LA-sized (N = 207) full SAGDFN forward step under the thread
// sweep: the acceptance shape for end-to-end model parallelism.
void BM_SagdfnForwardThreads(benchmark::State& state) {
  BenchThreadScope scope(state, state.range(0));
  const int64_t n = 207;
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 16;
  config.m = 20;
  config.k = 16;
  config.hidden_dim = 32;
  config.heads = 4;
  config.ffn_hidden = 16;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;
  core::SagdfnModel model(config);
  utils::Rng rng(9);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({8, 12, n, 2}), rng);
  tensor::Tensor tod =
      tensor::Tensor::Uniform(tensor::Shape({8, 12}), rng);
  autograd::NoGradGuard guard;
  model.SetTraining(false);
  model.Forward(x, tod, 0);  // warm up / fix the index set
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, tod, 0));
  }
}
BENCHMARK(BM_SagdfnForwardThreads)
    ->ArgNames({"threads"})
    ->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// SIMD dispatch A/B: the same raw kernel at an explicitly pinned level.
// Each (kernel, level) pair also records its per-iteration time into the
// telemetry registry as "simd.<kernel>.<level>", so the cost JSON written
// at exit carries the scalar-vs-avx2 pairs that
// tools/check_bench_regression.py --require-simd-speedup checks (>= 2x on
// the transcendental kernels, where the vectorized polynomial exp replaces
// one libm call per element).
// ---------------------------------------------------------------------------

/// Pins the dispatch level for one benchmark run, restoring the previous
/// level afterwards. Skips the benchmark when the level is unavailable.
class SimdLevelScope {
 public:
  SimdLevelScope(benchmark::State& state, tensor::simd::Level level)
      : previous_(tensor::simd::ActiveLevel()) {
    ok_ = tensor::simd::SetActiveLevel(level);
    if (!ok_) state.SkipWithError("SIMD level unavailable on this machine");
  }
  ~SimdLevelScope() { tensor::simd::SetActiveLevel(previous_); }
  bool ok() const { return ok_; }

 private:
  tensor::simd::Level previous_;
  bool ok_ = false;
};

constexpr int64_t kSimdBenchLen = 65536;

/// Runs `body(kernels)` per iteration, timing each call and recording the
/// per-iteration seconds under "simd.<name>.<level>".
template <typename Body>
void RunSimdKernelBench(benchmark::State& state, const char* name,
                        Body&& body) {
  const auto level = static_cast<tensor::simd::Level>(state.range(0));
  SimdLevelScope scope(state, level);
  if (!scope.ok()) return;
  const tensor::simd::Kernels& kern = tensor::simd::KernelsFor(level);
  const std::string timer_name =
      std::string("simd.") + name + "." + tensor::simd::LevelName(level);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    body(kern);
    const auto t1 = std::chrono::steady_clock::now();
    obs::Telemetry::Global().RecordDuration(
        timer_name, std::chrono::duration<double>(t1 - t0).count());
  }
  state.SetItemsProcessed(state.iterations() * kSimdBenchLen);
  state.SetLabel(tensor::simd::LevelName(level));
}

/// Shared input/output buffers for the kernel A/B benches.
struct SimdBenchData {
  tensor::Tensor a, b, c, out;
  SimdBenchData() {
    utils::Rng rng(11);
    const tensor::Shape shape({kSimdBenchLen});
    a = tensor::Tensor::Normal(shape, rng);
    b = tensor::Tensor::Normal(shape, rng);
    c = tensor::Tensor::Uniform(shape, rng);  // in (0, 1): a valid gate
    out = tensor::Tensor::Zeros(shape);
  }
  static SimdBenchData& Get() {
    static SimdBenchData data;
    return data;
  }
};

void BM_SimdAdd(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "add", [&](const tensor::simd::Kernels& k) {
    k.add(d.a.data(), d.b.data(), d.out.data(), kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdAdd)->ArgNames({"level"})->Arg(0)->Arg(1);

void BM_SimdMul(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "mul", [&](const tensor::simd::Kernels& k) {
    k.mul(d.a.data(), d.b.data(), d.out.data(), kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdMul)->ArgNames({"level"})->Arg(0)->Arg(1);

void BM_SimdExp(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "exp", [&](const tensor::simd::Kernels& k) {
    k.vexp(d.a.data(), d.out.data(), kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdExp)->ArgNames({"level"})->Arg(0)->Arg(1);

void BM_SimdSigmoid(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "sigmoid", [&](const tensor::simd::Kernels& k) {
    k.sigmoid(d.a.data(), d.out.data(), kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdSigmoid)->ArgNames({"level"})->Arg(0)->Arg(1);

void BM_SimdTanh(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "tanh", [&](const tensor::simd::Kernels& k) {
    k.vtanh(d.a.data(), d.out.data(), kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdTanh)->ArgNames({"level"})->Arg(0)->Arg(1);

void BM_SimdGruBlend(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(state, "gru_blend", [&](const tensor::simd::Kernels& k) {
    k.gru_blend(d.c.data(), d.a.data(), d.b.data(), d.out.data(),
                kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdGruBlend)->ArgNames({"level"})->Arg(0)->Arg(1);

// The fused GRU step (the whole cell tail in one pass: r/z sigmoids, the
// candidate tanh with the r-gated hidden projection, and the blend).
void BM_SimdGruStep(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  static const tensor::Tensor xi = [] {
    utils::Rng rng(12);
    return tensor::Tensor::Normal(tensor::Shape({3 * kSimdBenchLen}), rng);
  }();
  static const tensor::Tensor hh = [] {
    utils::Rng rng(13);
    return tensor::Tensor::Normal(tensor::Shape({3 * kSimdBenchLen}), rng);
  }();
  RunSimdKernelBench(state, "gru_step", [&](const tensor::simd::Kernels& k) {
    k.gru_step(xi.data(), hh.data(), d.a.data(), d.out.data(),
               /*r_out=*/nullptr, /*z_out=*/nullptr, /*n_out=*/nullptr,
               kSimdBenchLen);
    benchmark::DoNotOptimize(d.out.data());
  });
}
BENCHMARK(BM_SimdGruStep)->ArgNames({"level"})->Arg(0)->Arg(1);

// Deterministic block reduction over the bench buffer. The per-block
// partials live in the calling thread's ScratchArena, so this bench also
// keeps the `arena.high_water_bytes` gauge live in the cost JSON when CI
// runs with --benchmark_filter=BM_Simd (no other BM_Simd bench touches
// the arena).
void BM_SimdBlockReduceSum(benchmark::State& state) {
  SimdBenchData& d = SimdBenchData::Get();
  RunSimdKernelBench(
      state, "block_reduce_sum", [&](const tensor::simd::Kernels& k) {
        const double total = utils::DeterministicBlockReduce<double>(
            kSimdBenchLen, 0.0,
            [&](int64_t lo, int64_t hi) {
              return k.sum(d.a.data() + lo, hi - lo);
            },
            [](double& acc, double part) { acc += part; });
        benchmark::DoNotOptimize(total);
      });
}
BENCHMARK(BM_SimdBlockReduceSum)->ArgNames({"level"})->Arg(0)->Arg(1);

// Telemetry overhead contract. The disabled path of SAGDFN_SCOPED_TIMER
// must be a single relaxed atomic load — this bench both measures it and
// asserts that nothing was recorded (instrumented kernels with telemetry
// off must stay within noise of PR 1 throughput).
void BM_ScopedTimerDisabled(benchmark::State& state) {
  const bool prev = obs::Telemetry::CollectionEnabled();
  obs::Telemetry::SetCollectionEnabled(false);
  for (auto _ : state) {
    SAGDFN_SCOPED_TIMER("bench.overhead.disabled");
    benchmark::ClobberMemory();
  }
  SAGDFN_CHECK_EQ(
      obs::Telemetry::Global().timer("bench.overhead.disabled").count, 0);
  obs::Telemetry::SetCollectionEnabled(prev);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerDisabled);

// The enabled path: two steady_clock reads plus relaxed-atomic updates.
void BM_ScopedTimerEnabled(benchmark::State& state) {
  const bool prev = obs::Telemetry::CollectionEnabled();
  obs::Telemetry::SetCollectionEnabled(true);
  for (auto _ : state) {
    SAGDFN_SCOPED_TIMER("bench.overhead.enabled");
    benchmark::ClobberMemory();
  }
  obs::Telemetry::SetCollectionEnabled(prev);
#if !defined(SAGDFN_DISABLE_TELEMETRY)
  SAGDFN_CHECK_GT(
      obs::Telemetry::Global().timer("bench.overhead.enabled").count, 0);
#endif
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerEnabled);

}  // namespace
}  // namespace sagdfn

// Custom main: defaults --benchmark_out to BENCH_micro_ops.json (JSON
// format) so every run leaves a machine-readable record; explicit
// --benchmark_out flags take precedence.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_ops.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  // Collect scoped-timer stats from the instrumented kernels (sns/ssma/
  // gconv/encoder/decoder) across the whole run; the overhead benches
  // toggle collection themselves and restore this state.
  sagdfn::obs::Telemetry::SetCollectionEnabled(true);
  benchmark::RunSpecifiedBenchmarks();
  // Peak scratch-arena footprint across the whole run rides along in the
  // cost JSON's gauges.
  sagdfn::obs::Telemetry::Global().SetGauge(
      "arena.high_water_bytes",
      static_cast<double>(sagdfn::utils::ScratchArena::ProcessHighWater()));
  sagdfn::obs::Telemetry::SetCollectionEnabled(false);
  const sagdfn::utils::Status cost_status =
      sagdfn::obs::Telemetry::Global().WriteRegistryJson(
          "BENCH_micro_ops_cost.json", "micro_ops");
  if (cost_status.ok()) {
    std::cerr << "[obs ] per-kernel cost breakdown written to "
                 "BENCH_micro_ops_cost.json\n";
  } else {
    std::cerr << "[obs ] " << cost_status.ToString() << "\n";
  }
  benchmark::Shutdown();
  return 0;
}
