// Google-benchmark micro-benchmarks for the kernels behind the paper's
// complexity claims: matmul, entmax, SNS sampling, slim vs dense graph
// diffusion, and a full SAGDFN forward step.
#include <benchmark/benchmark.h>

#include "core/entmax.h"
#include "core/sagdfn.h"
#include "core/sns.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  utils::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  tensor::Tensor b = tensor::Tensor::Normal(tensor::Shape({n, n}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_EntmaxForward(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const float alpha = static_cast<float>(state.range(1)) / 10.0f;
  utils::Rng rng(2);
  tensor::Tensor z =
      tensor::Tensor::Normal(tensor::Shape({rows, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntmaxForward(z, alpha, 1));
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_EntmaxForward)
    ->Args({256, 10})   // alpha = 1.0 (softmax fast path)
    ->Args({256, 15})   // alpha = 1.5 (bisection)
    ->Args({256, 20});  // alpha = 2.0

void BM_EntmaxBackward(benchmark::State& state) {
  utils::Rng rng(3);
  tensor::Tensor z =
      tensor::Tensor::Normal(tensor::Shape({256, 64}), rng);
  tensor::Tensor p = core::EntmaxForward(z, 1.5f, 1);
  tensor::Tensor g =
      tensor::Tensor::Normal(tensor::Shape({256, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EntmaxBackward(p, g, 1.5f, 1));
  }
}
BENCHMARK(BM_EntmaxBackward);

void BM_SignificantNeighborSampling(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::SignificantNeighborSampler sampler(n, 20, 16, 4);
  utils::Rng rng(5);
  tensor::Tensor e = tensor::Tensor::Normal(tensor::Shape({n, 16}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(e, true));
  }
  state.SetItemsProcessed(state.iterations() * n * 20);
}
BENCHMARK(BM_SignificantNeighborSampling)->Arg(256)->Arg(1024)->Arg(2048);

// The paper's central cost contrast: one diffusion application with a
// slim [N, M] adjacency vs a dense [N, N] adjacency.
void BM_SlimDiffusion(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t m = 20;
  const int64_t channels = 16;
  utils::Rng rng(6);
  tensor::Tensor a =
      tensor::Tensor::Uniform(tensor::Shape({n, m}), rng);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, n, channels}), rng);
  std::vector<int64_t> index_set(m);
  for (int64_t i = 0; i < m; ++i) index_set[i] = i;
  for (auto _ : state) {
    tensor::Tensor gathered = tensor::IndexSelect(x, 1, index_set);
    benchmark::DoNotOptimize(
        tensor::Add(tensor::BatchedMatMul(a, gathered), x));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * m * channels);
}
BENCHMARK(BM_SlimDiffusion)->Arg(256)->Arg(1024)->Arg(2048);

void BM_DenseDiffusion(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t channels = 16;
  utils::Rng rng(7);
  tensor::Tensor a = tensor::Tensor::Uniform(tensor::Shape({n, n}), rng);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, n, channels}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tensor::Add(tensor::BatchedMatMul(a, x), x));
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * channels);
}
BENCHMARK(BM_DenseDiffusion)->Arg(256)->Arg(1024);

void BM_SagdfnForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 8;
  config.m = 16;
  config.k = 12;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;
  core::SagdfnModel model(config);
  utils::Rng rng(8);
  tensor::Tensor x =
      tensor::Tensor::Normal(tensor::Shape({4, 12, n, 2}), rng);
  tensor::Tensor tod =
      tensor::Tensor::Uniform(tensor::Shape({4, 12}), rng);
  autograd::NoGradGuard guard;
  model.SetTraining(false);
  model.Forward(x, tod, 0);  // warm up / fix the index set
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x, tod, 0));
  }
}
BENCHMARK(BM_SagdfnForward)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sagdfn

BENCHMARK_MAIN();
