// Reproduces paper Table VII: performance comparison on NewYork2000
// (simulated stand-in). Models whose memory class OOMs at 2000 nodes on
// a 32 GB GPU are marked 'x'.
#include "bench_common.h"

int main(int argc, char** argv) {
  return sagdfn::bench::RunLargeDatasetTable(
      "newyork2000-sim", 2000,
      "Table VII: performance comparison on NewYork2000 (simulated)", argc,
      argv);
}
