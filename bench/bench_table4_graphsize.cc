// Reproduces paper Table IV: accuracy on the London200 evaluation subset
// as a function of the number of nodes in the training graph. SAGDFN
// scales to the biggest graphs; AGCRN / GTS / D2STGNN are trained at the
// largest size their memory class can process (paper: 1750 / 1000 / 200
// of 2000; emulated here as the same fractions of the bench's largest
// size).
#include <iostream>

#include "bench_common.h"

namespace sagdfn::bench {
namespace {

struct SizedRun {
  std::string model;
  int64_t train_nodes;
};

metrics::Scores EvalOnSubset(const std::string& model_name,
                             const data::TimeSeries& series,
                             int64_t train_nodes, int64_t eval_nodes,
                             const BenchConfig& config,
                             std::vector<metrics::Scores>* horizon_out) {
  data::TimeSeries train_series = data::SliceNodes(series, train_nodes);
  data::ForecastDataset dataset(
      train_series, data::DefaultWindowSpec("london2000-sim"));
  auto forecaster = baselines::MakeForecaster(
      model_name, MakeModelSizing(config));
  baselines::FitOptions fit = MakeFitOptions(config);
  forecaster->Fit(dataset, fit);
  const int64_t max_windows =
      fit.max_eval_batches > 0 ? fit.max_eval_batches * fit.batch_size : 0;
  tensor::Tensor pred =
      forecaster->Predict(dataset, data::Split::kTest, max_windows);
  tensor::Tensor truth = baselines::CollectTruth(
      dataset, data::Split::kTest, pred.dim(0));
  // Score only the shared evaluation subset (the first eval_nodes).
  tensor::Tensor pred_sub = tensor::Slice(pred, 2, 0, eval_nodes);
  tensor::Tensor truth_sub = tensor::Slice(truth, 2, 0, eval_nodes);
  *horizon_out =
      metrics::EvaluateHorizons(pred_sub, truth_sub, {3, 6, 12});
  return (*horizon_out)[0];
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Table IV: London200 accuracy vs training-graph size", config);

  data::TimeSeries series =
      data::MakeDataset("london2000-sim", config.scale());
  const int64_t total = series.num_nodes();
  const int64_t eval_nodes = config.full ? 200 : total / 5;
  std::vector<int64_t> sagdfn_sizes;
  if (config.full) {
    sagdfn_sizes = {200, 1000, 1750, 2000};
  } else {
    sagdfn_sizes = {eval_nodes, 2 * eval_nodes, 3 * eval_nodes, total};
  }
  // Baseline caps mirror the paper's max-processable sizes as fractions
  // of the largest graph (AGCRN 1750/2000, GTS 1000/2000, D2STGNN
  // 200/2000).
  const int64_t agcrn_cap = std::max<int64_t>(eval_nodes, total * 7 / 8);
  const int64_t gts_cap = std::max<int64_t>(eval_nodes, total / 2);
  const int64_t d2_cap = eval_nodes;

  std::cout << "evaluation subset: first " << eval_nodes << " of " << total
            << " nodes\n\n";

  utils::TablePrinter table(
      {"Model", "# nodes in training set", "H3 MAE", "H3 RMSE", "H3 MAPE",
       "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE", "H12 RMSE",
       "H12 MAPE"});
  auto add = [&](const std::string& model, int64_t train_nodes) {
    std::vector<metrics::Scores> horizons;
    bench::EvalOnSubset(model, series, train_nodes, eval_nodes, config,
                        &horizons);
    std::vector<std::string> row = {model, std::to_string(train_nodes)};
    for (const auto& s : horizons) {
      row.push_back(utils::FormatDouble(s.mae, 2));
      row.push_back(utils::FormatDouble(s.rmse, 2));
      row.push_back(utils::FormatDouble(s.mape * 100.0, 1) + "%");
    }
    table.AddRow(std::move(row));
    std::cerr << "[done] " << model << " @ " << train_nodes << " nodes\n";
  };

  add("AGCRN", agcrn_cap);
  add("GTS", gts_cap);
  add("D2STGNN(c)", d2_cap);
  for (int64_t size : sagdfn_sizes) add("SAGDFN", size);

  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper, full scale): SAGDFN improves "
               "monotonically as the training graph grows and beats every "
               "capped baseline. At quick scale SAGDFN matches/beats the "
               "capped baselines, but monotonicity needs per-configuration "
               "convergence (fixed iteration budgets penalize larger "
               "graphs) — see EXPERIMENTS.md.\n";
  return 0;
}
