// Reproduces paper Table IV: accuracy on the London200 evaluation subset
// as a function of the number of nodes in the training graph. SAGDFN
// scales to the biggest graphs; AGCRN / GTS / D2STGNN are trained at the
// largest size their memory class can process (paper: 1750 / 1000 / 200
// of 2000; emulated here as the same fractions of the bench's largest
// size).
//
// With --scaling the bench instead measures the scale-tier contract
// (ISSUE: 10k–100k nodes): per-N dense-vs-CSR diffusion step latency
// normalized to ns per (node x slim column) — which must stay ~flat as N
// grows, i.e. linear N*M total cost — plus frozen-model heap-vs-mmap
// load times and a served plan tick, with two byte-equality invariants
// (CSR step == dense step, mmap forecasts == heap forecasts). Results go
// to BENCH_graphsize_scaling.json for
// tools/check_bench_regression.py --graphsize-fresh. Quick covers
// N={2000, 10000}; --full adds the nightly N={50000, 100000} legs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/fused_ops.h"
#include "graph/csr.h"
#include "nn/serialization.h"
#include "serve/frozen_model.h"

namespace sagdfn::bench {
namespace {

struct SizedRun {
  std::string model;
  int64_t train_nodes;
};

metrics::Scores EvalOnSubset(const std::string& model_name,
                             const data::TimeSeries& series,
                             int64_t train_nodes, int64_t eval_nodes,
                             const BenchConfig& config,
                             std::vector<metrics::Scores>* horizon_out) {
  data::TimeSeries train_series = data::SliceNodes(series, train_nodes);
  data::ForecastDataset dataset(
      train_series, data::DefaultWindowSpec("london2000-sim"));
  auto forecaster = baselines::MakeForecaster(
      model_name, MakeModelSizing(config));
  baselines::FitOptions fit = MakeFitOptions(config);
  forecaster->Fit(dataset, fit);
  const int64_t max_windows =
      fit.max_eval_batches > 0 ? fit.max_eval_batches * fit.batch_size : 0;
  tensor::Tensor pred =
      forecaster->Predict(dataset, data::Split::kTest, max_windows);
  tensor::Tensor truth = baselines::CollectTruth(
      dataset, data::Split::kTest, pred.dim(0));
  // Score only the shared evaluation subset (the first eval_nodes).
  tensor::Tensor pred_sub = tensor::Slice(pred, 2, 0, eval_nodes);
  tensor::Tensor truth_sub = tensor::Slice(truth, 2, 0, eval_nodes);
  *horizon_out =
      metrics::EvaluateHorizons(pred_sub, truth_sub, {3, 6, 12});
  return (*horizon_out)[0];
}

// ---------------------------------------------------------------------------
// --scaling mode

struct ScaleRow {
  int64_t nodes = 0;
  int64_t m = 0;
  double dense_step_ms = 0.0;
  double csr_step_ms = 0.0;
  double ns_per_nm = 0.0;  // csr step, ns per (node x slim column)
  double heap_load_ms = 0.0;
  double mmap_load_ms = 0.0;
  double tick_ms = 0.0;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Mean latency of fn over enough iterations to cover min_seconds.
template <typename F>
double MeanMs(F&& fn, double min_seconds, int min_iters) {
  fn();  // warmup
  int iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = SecondsSince(t0);
  } while (elapsed < min_seconds || iters < min_iters);
  return elapsed * 1000.0 / iters;
}

core::SagdfnConfig ScalingModelConfig(int64_t n) {
  core::SagdfnConfig config;
  config.num_nodes = n;
  config.embedding_dim = 8;
  config.m = 16;
  config.k = 12;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = 6;
  config.horizon = 3;
  config.convergence_iters = 2;
  config.seed = 99;
  return config;
}

int RunScaling(bool full) {
  std::vector<int64_t> sizes = {2000, 10000};
  if (full) {
    sizes.push_back(50000);
    sizes.push_back(100000);
  }
  int csr_matches_dense = 1;
  int mmap_matches_heap = 1;
  std::vector<ScaleRow> rows;

  for (int64_t n : sizes) {
    const core::SagdfnConfig config = ScalingModelConfig(n);
    auto frozen = serve::FrozenModel::Freeze(
        std::make_unique<core::SagdfnModel>(config));
    const core::AdjacencySnapshot& snap = frozen->snapshot();
    const int64_t c = config.hidden_dim;

    ScaleRow row;
    row.nodes = n;
    row.m = config.m;

    // Dense vs CSR diffusion step over the frozen slim adjacency.
    utils::Rng rng(13 + n);
    tensor::Tensor term =
        tensor::Tensor::Normal(tensor::Shape({1, n, c}), rng);
    tensor::Tensor out_dense =
        tensor::Tensor::Zeros(tensor::Shape({1, n, c}));
    tensor::Tensor out_csr =
        tensor::Tensor::Zeros(tensor::Shape({1, n, c}));
    const graph::NodeShards shards = graph::ComputeNodeShards(
        n, c * static_cast<int64_t>(sizeof(float)));
    row.dense_step_ms = MeanMs(
        [&] {
          core::OneStepFastGConvInto(snap.a_s.data(), term.data(),
                                     snap.inv_deg.data(), snap.index_set, 1,
                                     n, c, out_dense.data());
        },
        0.2, 5);
    row.csr_step_ms = MeanMs(
        [&] {
          core::OneStepFastGConvCsrInto(*snap.csr, term.data(),
                                        snap.inv_deg.data(), snap.index_set,
                                        shards, 1, n, c, out_csr.data());
        },
        0.2, 5);
    row.ns_per_nm = row.csr_step_ms * 1e6 /
                    static_cast<double>(n * config.m);
    if (std::memcmp(out_dense.data(), out_csr.data(),
                    out_dense.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "[scaling] CSR step != dense step at N=%lld\n",
                   static_cast<long long>(n));
      csr_matches_dense = 0;
    }

    // Frozen-model persistence: heap checkpoint load vs mmap load.
    const std::string mapped_path = "bench_graphsize_model.sagm";
    const std::string heap_path = "bench_graphsize_model.ckpt";
    if (!frozen->Save(mapped_path).ok() ||
        !nn::SaveModule(frozen->model(), heap_path).ok()) {
      std::fprintf(stderr, "[scaling] save failed at N=%lld\n",
                   static_cast<long long>(n));
      return 1;
    }
    std::unique_ptr<serve::FrozenModel> heap;
    std::unique_ptr<serve::FrozenModel> mapped;
    row.heap_load_ms = MeanMs(
        [&] {
          heap.reset();
          if (!serve::FrozenModel::Load(config, heap_path, &heap).ok()) {
            std::abort();
          }
        },
        0.0, 3);
    row.mmap_load_ms = MeanMs(
        [&] {
          mapped.reset();
          if (!serve::FrozenModel::LoadMapped(config, mapped_path, &mapped)
                   .ok()) {
            std::abort();
          }
        },
        0.0, 3);

    // One served tick through the mapped model's plan; forecasts must be
    // byte-identical to the heap-loaded model's.
    tensor::Tensor x = tensor::Tensor::Normal(
        tensor::Shape({1, config.history, n, config.input_dim}), rng);
    tensor::Tensor tod = tensor::Tensor::Uniform(
        tensor::Shape({1, config.horizon}), rng);
    tensor::Tensor got = mapped->Predict(x, tod);
    tensor::Tensor want = heap->Predict(x, tod);
    if (!(got.shape() == want.shape()) ||
        std::memcmp(got.data(), want.data(),
                    got.size() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "[scaling] mmap forecast != heap forecast at N=%lld\n",
                   static_cast<long long>(n));
      mmap_matches_heap = 0;
    }
    row.tick_ms = MeanMs([&] { mapped->Predict(x, tod); }, 0.2, 3);
    std::remove(mapped_path.c_str());
    std::remove(heap_path.c_str());

    rows.push_back(row);
    std::fprintf(stderr, "[scaling] done N=%lld\n",
                 static_cast<long long>(n));
  }

  utils::TablePrinter table({"N", "dense step ms", "CSR step ms",
                             "ns/(N*M)", "heap load ms", "mmap load ms",
                             "tick ms"});
  for (const ScaleRow& r : rows) {
    table.AddRow({std::to_string(r.nodes),
                  utils::FormatDouble(r.dense_step_ms, 3),
                  utils::FormatDouble(r.csr_step_ms, 3),
                  utils::FormatDouble(r.ns_per_nm, 3),
                  utils::FormatDouble(r.heap_load_ms, 2),
                  utils::FormatDouble(r.mmap_load_ms, 2),
                  utils::FormatDouble(r.tick_ms, 2)});
  }
  std::cout << table.ToString();

  const std::string json_path = "BENCH_graphsize_scaling.json";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[scaling] cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"graphsize\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(
        f,
        "    \"n%lld\": {\"nodes\": %lld, \"m\": %lld, "
        "\"dense_step_ms\": %.4f, \"csr_step_ms\": %.4f, "
        "\"ns_per_nm\": %.4f, \"heap_load_ms\": %.3f, "
        "\"mmap_load_ms\": %.3f, \"tick_ms\": %.3f}%s\n",
        static_cast<long long>(r.nodes), static_cast<long long>(r.nodes),
        static_cast<long long>(r.m), r.dense_step_ms, r.csr_step_ms,
        r.ns_per_nm, r.heap_load_ms, r.mmap_load_ms, r.tick_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"invariants\": {\"csr_matches_dense\": %d, "
               "\"mmap_matches_heap\": %d}\n}\n",
               csr_matches_dense, mmap_matches_heap);
  std::fclose(f);
  std::fprintf(stderr, "[scaling] summary written to %s\n",
               json_path.c_str());
  return csr_matches_dense == 1 && mmap_matches_heap == 1 ? 0 : 1;
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  bool scaling = false;
  bool scaling_full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--scaling") scaling = true;
    if (std::string(argv[i]) == "--full") scaling_full = true;
  }
  if (scaling) return bench::RunScaling(scaling_full);

  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Table IV: London200 accuracy vs training-graph size", config);

  data::TimeSeries series =
      data::MakeDataset("london2000-sim", config.scale());
  const int64_t total = series.num_nodes();
  const int64_t eval_nodes = config.full ? 200 : total / 5;
  std::vector<int64_t> sagdfn_sizes;
  if (config.full) {
    sagdfn_sizes = {200, 1000, 1750, 2000};
  } else {
    sagdfn_sizes = {eval_nodes, 2 * eval_nodes, 3 * eval_nodes, total};
  }
  // Baseline caps mirror the paper's max-processable sizes as fractions
  // of the largest graph (AGCRN 1750/2000, GTS 1000/2000, D2STGNN
  // 200/2000).
  const int64_t agcrn_cap = std::max<int64_t>(eval_nodes, total * 7 / 8);
  const int64_t gts_cap = std::max<int64_t>(eval_nodes, total / 2);
  const int64_t d2_cap = eval_nodes;

  std::cout << "evaluation subset: first " << eval_nodes << " of " << total
            << " nodes\n\n";

  utils::TablePrinter table(
      {"Model", "# nodes in training set", "H3 MAE", "H3 RMSE", "H3 MAPE",
       "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE", "H12 RMSE",
       "H12 MAPE"});
  auto add = [&](const std::string& model, int64_t train_nodes) {
    std::vector<metrics::Scores> horizons;
    bench::EvalOnSubset(model, series, train_nodes, eval_nodes, config,
                        &horizons);
    std::vector<std::string> row = {model, std::to_string(train_nodes)};
    for (const auto& s : horizons) {
      row.push_back(utils::FormatDouble(s.mae, 2));
      row.push_back(utils::FormatDouble(s.rmse, 2));
      row.push_back(utils::FormatDouble(s.mape * 100.0, 1) + "%");
    }
    table.AddRow(std::move(row));
    std::cerr << "[done] " << model << " @ " << train_nodes << " nodes\n";
  };

  add("AGCRN", agcrn_cap);
  add("GTS", gts_cap);
  add("D2STGNN(c)", d2_cap);
  for (int64_t size : sagdfn_sizes) add("SAGDFN", size);

  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper, full scale): SAGDFN improves "
               "monotonically as the training graph grows and beats every "
               "capped baseline. At quick scale SAGDFN matches/beats the "
               "capped baselines, but monotonicity needs per-configuration "
               "convergence (fixed iteration budgets penalize larger "
               "graphs) — see EXPERIMENTS.md.\n";
  return 0;
}
