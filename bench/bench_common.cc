#include "bench_common.h"

#include <cctype>
#include <iostream>

#include "utils/stopwatch.h"
#include "utils/string_util.h"

namespace sagdfn::bench {

namespace {

/// "Table X: cost on FOO (simulated)" -> "table_x_cost_on_foo_simulated".
std::string Slugify(const std::string& title) {
  std::string slug;
  slug.reserve(title.size());
  bool last_sep = true;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
      last_sep = false;
    } else if (!last_sep) {
      slug += '_';
      last_sep = true;
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "bench" : slug;
}

}  // namespace

BenchTelemetry::BenchTelemetry(const std::string& name)
    : name_(Slugify(name)) {
  obs::Telemetry::SetCollectionEnabled(true);
  obs::Telemetry::Global().Emit(
      obs::Event("bench.start").Str("bench", name_));
}

BenchTelemetry::~BenchTelemetry() {
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  telemetry.EmitSnapshot("bench:" + name_);
  const std::string path = "BENCH_" + name_ + ".json";
  utils::Status status = telemetry.WriteRegistryJson(path, name_);
  if (status.ok()) {
    std::cerr << "[obs ] cost breakdown written to " << path << "\n";
  } else {
    std::cerr << "[obs ] " << status.ToString() << "\n";
  }
}

BenchConfig ParseBenchConfig(int argc, char** argv) {
  utils::CommandLine cli(argc, argv);
  BenchConfig config;
  config.full = cli.GetBool("full", false);
  config.max_nodes = cli.GetInt("max-nodes", 0);
  config.epochs = cli.GetInt("epochs", 0);
  config.batch_size = cli.GetInt("batch", 8);
  config.max_train_batches = cli.GetInt("train-batches", 0);
  config.max_eval_batches = cli.GetInt("eval-batches", 0);
  config.learning_rate = cli.GetDouble("lr", 0.02);
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 5));
  return config;
}

baselines::FitOptions MakeFitOptions(const BenchConfig& config) {
  baselines::FitOptions fit;
  fit.epochs = config.epochs > 0 ? config.epochs : (config.full ? 30 : 6);
  fit.batch_size = config.batch_size;
  fit.learning_rate = config.learning_rate;
  fit.max_train_batches_per_epoch =
      config.max_train_batches > 0 ? config.max_train_batches
                                   : (config.full ? 0 : 25);
  fit.max_eval_batches = config.max_eval_batches > 0
                             ? config.max_eval_batches
                             : (config.full ? 0 : 8);
  fit.seed = config.seed;
  return fit;
}

baselines::ModelSizing MakeModelSizing(const BenchConfig& config) {
  baselines::ModelSizing sizing;
  if (config.full) {
    // Paper Section V-A implementation settings.
    sizing.hidden = 64;
    sizing.embedding = 10;
    sizing.diffusion_steps = 3;
    sizing.sagdfn_m = 100;
    sizing.sagdfn_k = 80;
    sizing.sagdfn_heads = 8;
    sizing.sagdfn_ffn_hidden = 32;
    sizing.sagdfn_embedding = 100;
    sizing.alpha = 2.0f;
    sizing.convergence_iters = 1 << 20;  // scheduled by the trainer
  } else {
    sizing.hidden = 16;
    sizing.embedding = 8;
    sizing.diffusion_steps = 2;
    sizing.sagdfn_m = 16;
    sizing.sagdfn_k = 12;
    sizing.sagdfn_heads = 2;
    sizing.sagdfn_ffn_hidden = 8;
    sizing.sagdfn_embedding = 12;
    sizing.alpha = 1.5f;
    sizing.convergence_iters = 1 << 20;
  }
  sizing.seed = config.seed;
  return sizing;
}

data::ForecastDataset LoadDataset(const std::string& name,
                                  const BenchConfig& config) {
  data::TimeSeries series = data::MakeDataset(name, config.scale());
  if (config.max_nodes > 0 && config.max_nodes < series.num_nodes()) {
    series = data::SliceNodes(series, config.max_nodes);
  }
  return data::ForecastDataset(std::move(series),
                               data::DefaultWindowSpec(name));
}

ModelRun RunForecaster(baselines::Forecaster& forecaster,
                       const data::ForecastDataset& dataset,
                       const BenchConfig& config,
                       const std::vector<int64_t>& horizons) {
  ModelRun run;
  run.name = forecaster.name();
  baselines::FitOptions fit = MakeFitOptions(config);
  forecaster.Fit(dataset, fit);
  run.fit_seconds = forecaster.LastFitSeconds();
  run.parameter_count = forecaster.ParameterCount();

  const int64_t max_windows =
      fit.max_eval_batches > 0 ? fit.max_eval_batches * fit.batch_size : 0;
  utils::Stopwatch inference_watch;
  tensor::Tensor pred =
      forecaster.Predict(dataset, data::Split::kTest, max_windows);
  run.inference_seconds = inference_watch.ElapsedSeconds();
  tensor::Tensor truth = baselines::CollectTruth(
      dataset, data::Split::kTest, pred.dim(0));
  run.horizon_scores = metrics::EvaluateHorizons(pred, truth, horizons);

  // Per-model cost rows for the BENCH_*.json breakdown (Table 10 shape:
  // parameters, train cost, inference cost).
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  telemetry.RecordDuration("bench.fit." + run.name, run.fit_seconds);
  telemetry.RecordDuration("bench.infer." + run.name,
                           run.inference_seconds);
  telemetry.SetGauge("bench.params." + run.name,
                     static_cast<double>(run.parameter_count));
  telemetry.Emit(obs::Event("bench.model_run")
                     .Str("model", run.name)
                     .Int("parameters", run.parameter_count)
                     .Double("fit_seconds", run.fit_seconds)
                     .Double("inference_seconds", run.inference_seconds));
  return run;
}

ModelRun RunModel(const std::string& name,
                  const data::ForecastDataset& dataset,
                  const BenchConfig& config,
                  const std::vector<int64_t>& horizons) {
  auto forecaster =
      baselines::MakeForecaster(name, MakeModelSizing(config));
  return RunForecaster(*forecaster, dataset, config, horizons);
}

bool PredictsOom(const std::string& name, int64_t full_scale_nodes,
                 const BenchConfig& config) {
  if (!baselines::HasFamily(name)) return false;
  core::MemoryParams params;
  params.num_nodes = full_scale_nodes;
  params.batch = 32;  // the paper's reduced batch for big datasets
  core::MemoryEstimate estimate = core::EstimateTrainingMemory(
      baselines::FamilyOf(name), params);
  return core::WouldOom(estimate, config.oom_budget_bytes);
}

void AddScoreRow(utils::TablePrinter& table, const ModelRun& run,
                 int64_t num_horizons) {
  std::vector<std::string> row;
  row.push_back(run.name);
  if (run.oom) {
    for (int64_t h = 0; h < num_horizons * 3; ++h) row.push_back("x");
  } else {
    for (const auto& s : run.horizon_scores) {
      row.push_back(utils::FormatDouble(s.mae, 2));
      row.push_back(utils::FormatDouble(s.rmse, 2));
      row.push_back(utils::FormatDouble(s.mape * 100.0, 1) + "%");
    }
  }
  table.AddRow(std::move(row));
}

void PrintHeader(const std::string& title, const BenchConfig& config) {
  std::cout << "=== " << title << " ===\n"
            << "profile: " << (config.full ? "full" : "quick")
            << " (use --full for paper-scale sizes; quick preserves the "
               "qualitative shape at CPU-friendly cost)\n\n";
}

int RunLargeDatasetTable(const std::string& dataset_name,
                         int64_t paper_full_nodes, const std::string& title,
                         int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  if (!config.full) {
    // The dense baselines that survive the OOM filter are O(N^2); keep
    // the quick profile's node count and per-model iteration budget small
    // enough that the whole table finishes in a few minutes on one core.
    if (config.max_nodes == 0) config.max_nodes = 160;
    if (config.epochs == 0) config.epochs = 6;
    if (config.max_train_batches == 0) config.max_train_batches = 20;
  }
  PrintHeader(title, config);
  BenchTelemetry telemetry(dataset_name + "_table");

  data::ForecastDataset dataset = LoadDataset(dataset_name, config);
  std::cout << "dataset: " << dataset.num_nodes() << " nodes (paper scale: "
            << paper_full_nodes << "), "
            << dataset.series().num_steps() << " steps; OOM markers use "
            << "the paper-scale node count against a "
            << utils::FormatBytes(config.oom_budget_bytes)
            << " budget\n\n";

  const std::vector<int64_t> horizons = {3, 6, 12};
  utils::TablePrinter table({dataset_name, "H3 MAE", "H3 RMSE", "H3 MAPE",
                             "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE"});
  std::vector<std::string> models = baselines::PaperBaselineNames();
  models.push_back("SAGDFN");
  for (const auto& name : models) {
    ModelRun run;
    if (PredictsOom(name, paper_full_nodes, config)) {
      run.name = name;
      run.oom = true;
      std::cerr << "[oom ] " << name << "\n";
    } else {
      run = RunModel(name, dataset, config, horizons);
      std::cerr << "[done] " << name << " ("
                << utils::FormatDouble(run.fit_seconds, 1) << "s fit)\n";
    }
    AddScoreRow(table, run, horizons.size());
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper, full scale): most dense STGNNs "
               "OOM; GraphWaveNet/MTGNN run but trail badly; SAGDFN wins "
               "every horizon by a clear margin. The quick profile "
               "reproduces the OOM pattern and the survivor set exactly; "
               "accuracy gaps between the survivors compress at small N "
               "(the paper's margin comes from dense adjacencies "
               "degrading at N ~ 2000) — see EXPERIMENTS.md.\n";
  return 0;
}

}  // namespace sagdfn::bench
