#ifndef SAGDFN_BENCH_BENCH_COMMON_H_
#define SAGDFN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "baselines/registry.h"
#include "data/registry.h"
#include "metrics/metrics.h"
#include "obs/telemetry.h"
#include "utils/cli.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

namespace sagdfn::bench {

/// Unbiased percentile of an ALREADY-SORTED ascending sample: linear
/// interpolation at rank pct/100 * (n-1) (the quantile estimator R-7 /
/// numpy.percentile default). Shared by every bench that reports
/// latency percentiles (bench_serve, bench_rollout) so their numbers
/// agree; callers sort once per scenario and query as many percentiles
/// as they need. A 2-sample p50 returns the midpoint — the previous
/// per-bench helpers added +0.5 to the index, which systematically
/// overshot (a 2-sample p50 returned the max).
inline double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank =
      std::clamp(pct, 0.0, 100.0) / 100.0 *
      static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Scoped bench telemetry: enables obs collection for the process (so the
/// sns/ssma/gconv scoped timers and the per-model fit/inference records
/// all land in the shared registry) and, on destruction, writes the
/// registry as a machine-readable `BENCH_<name>.json` cost breakdown —
/// the Table 10 analogue for whatever the bench ran. An event stream
/// (SAGDFN_TELEMETRY=path) composes with this: events go to the JSONL
/// sink, the aggregate still goes to BENCH_<name>.json.
class BenchTelemetry {
 public:
  explicit BenchTelemetry(const std::string& name);
  ~BenchTelemetry();

  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

 private:
  std::string name_;
};

/// Scale/effort knobs shared by every bench binary. Default is the CPU
/// "quick" profile (seconds per model); `--full` requests paper-scale
/// datasets and longer training (hours on CPU — intended for overnight
/// runs, same code path).
struct BenchConfig {
  bool full = false;
  /// Cap on nodes taken from the generated dataset (0 = all).
  int64_t max_nodes = 0;
  int64_t epochs = 0;          // 0 = profile default
  int64_t batch_size = 8;
  int64_t max_train_batches = 0;  // 0 = profile default
  int64_t max_eval_batches = 0;   // 0 = profile default
  double learning_rate = 0.02;
  uint64_t seed = 5;
  /// GPU budget used for OOM predictions (paper: 32 GB V100).
  double oom_budget_bytes = 32.0 * (1ull << 30);

  data::DatasetScale scale() const {
    return full ? data::DatasetScale::kFull : data::DatasetScale::kQuick;
  }
};

/// Parses --full, --max-nodes, --epochs, --batch, --train-batches,
/// --eval-batches, --lr, --seed.
BenchConfig ParseBenchConfig(int argc, char** argv);

/// Fit options derived from the bench config (quick profile defaults).
baselines::FitOptions MakeFitOptions(const BenchConfig& config);

/// Model sizing derived from the bench config. Quick: small dims; full:
/// the paper's configuration (d=100, M=100, K=80, 8 heads, hidden 64,
/// J=3).
baselines::ModelSizing MakeModelSizing(const BenchConfig& config);

/// Builds a named dataset at bench scale, sliced to max_nodes when set.
data::ForecastDataset LoadDataset(const std::string& name,
                                  const BenchConfig& config);

/// Result of one model on one dataset.
struct ModelRun {
  std::string name;
  bool oom = false;
  std::vector<metrics::Scores> horizon_scores;  // per requested horizon
  int64_t parameter_count = 0;
  double fit_seconds = 0.0;
  double inference_seconds = 0.0;
};

/// Trains and evaluates `model` (by registry name) on `dataset`, scoring
/// the given 1-based horizons on the test split.
ModelRun RunModel(const std::string& name,
                  const data::ForecastDataset& dataset,
                  const BenchConfig& config,
                  const std::vector<int64_t>& horizons);

/// Like RunModel but for a pre-built forecaster (ablation variants).
ModelRun RunForecaster(baselines::Forecaster& forecaster,
                       const data::ForecastDataset& dataset,
                       const BenchConfig& config,
                       const std::vector<int64_t>& horizons);

/// Predicts whether `name` (an STGNN family) would exceed the GPU budget
/// at the paper's full-scale node count for the dataset. Classical
/// baselines never OOM.
bool PredictsOom(const std::string& name, int64_t full_scale_nodes,
                 const BenchConfig& config);

/// Appends a Table III-style row: model, then MAE/RMSE/MAPE per horizon
/// (or "x" cells when the run is marked OOM).
void AddScoreRow(utils::TablePrinter& table, const ModelRun& run,
                 int64_t num_horizons);

/// Prints a standard bench header naming the paper artifact reproduced.
void PrintHeader(const std::string& title, const BenchConfig& config);

/// Shared driver for paper Tables V / VI / VII: every baseline plus
/// SAGDFN on a large dataset, with models whose memory class exceeds the
/// GPU budget at `paper_full_nodes` marked 'x' instead of trained (they
/// could not run on the paper's hardware; training their quick-scale
/// variants would fabricate numbers the paper doesn't have).
int RunLargeDatasetTable(const std::string& dataset_name,
                         int64_t paper_full_nodes, const std::string& title,
                         int argc, char** argv);

}  // namespace sagdfn::bench

#endif  // SAGDFN_BENCH_BENCH_COMMON_H_
