// Fused-vs-eager A/B benchmark for the eval-mode rollout. Replays the
// same METR-LA-shaped windows through both FrozenModel paths:
//
//   eager — SagdfnModel::Predict, walking the autograd op layer per step
//   plan  — core::RolloutPlan replay (precompiled kernel sequence, arena
//           scratch slab, zero per-step allocation)
//
// and writes per-batch mean latencies plus the speedup to
// BENCH_rollout_fusion.json, together with two invariants the plan
// promises: replay output is memcmp-identical to the eager path, and the
// arena high-water mark is stable across ticks after warmup (no per-step
// heap growth). tools/check_bench_regression.py --rollout-fresh gates on
// that JSON against the committed baseline in bench/baselines/.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sagdfn.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/arena.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

struct Scenario {
  double eager_ms = 0.0;
  double plan_ms = 0.0;
  // Per-iteration latency percentiles via the shared unbiased estimator
  // (bench::PercentileSorted) — the same math bench_serve reports, so
  // the two benches' numbers are comparable.
  double eager_p50_ms = 0.0;
  double eager_p99_ms = 0.0;
  double plan_p50_ms = 0.0;
  double plan_p99_ms = 0.0;
};

std::map<std::string, Scenario>& Scenarios() {
  static std::map<std::string, Scenario> scenarios;
  return scenarios;
}

// The METR-LA shape (207 nodes) at the repo's CPU-scaled model size —
// the same regime the paper-table benches use for this dataset.
core::SagdfnConfig BenchConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 207;
  config.embedding_dim = 16;
  config.m = 20;
  config.k = 16;
  config.hidden_dim = 32;
  config.heads = 4;
  config.ffn_hidden = 16;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;
  config.seed = 7;
  return config;
}

std::shared_ptr<const serve::FrozenModel> SharedModel() {
  static std::shared_ptr<const serve::FrozenModel> model = [] {
    auto raw = std::make_unique<core::SagdfnModel>(BenchConfig());
    return std::shared_ptr<const serve::FrozenModel>(
        serve::FrozenModel::Freeze(std::move(raw)));
  }();
  return model;
}

struct Inputs {
  tensor::Tensor x;
  tensor::Tensor tod;
};

const Inputs& InputsFor(int64_t batch) {
  static std::map<int64_t, Inputs> inputs;
  auto it = inputs.find(batch);
  if (it != inputs.end()) return it->second;
  const core::SagdfnConfig config = BenchConfig();
  utils::Rng rng(99 + static_cast<uint64_t>(batch));
  Inputs in;
  in.x = tensor::Tensor::Normal(
      tensor::Shape({batch, config.history, config.num_nodes,
                     config.input_dim}),
      rng);
  in.tod = tensor::Tensor::Uniform(tensor::Shape({batch, config.horizon}),
                                   rng, 0.0f, 1.0f);
  return inputs.emplace(batch, std::move(in)).first->second;
}

std::string ScenarioName(int64_t batch) {
  return "metr_la_sim.b" + std::to_string(batch);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void BM_RolloutEager(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::shared_ptr<const serve::FrozenModel> model = SharedModel();
  const Inputs& in = InputsFor(batch);
  double total_s = 0.0;
  std::vector<double> iter_ms;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(model->PredictEager(in.x, in.tod));
    const double s = SecondsSince(t0);
    total_s += s;
    iter_ms.push_back(1e3 * s);
  }
  std::sort(iter_ms.begin(), iter_ms.end());
  Scenario& scenario = Scenarios()[ScenarioName(batch)];
  scenario.eager_ms = 1e3 * total_s / static_cast<double>(iter_ms.size());
  scenario.eager_p50_ms = bench::PercentileSorted(iter_ms, 50.0);
  scenario.eager_p99_ms = bench::PercentileSorted(iter_ms, 99.0);
}
BENCHMARK(BM_RolloutEager)
    ->ArgNames({"batch"})
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

void BM_RolloutPlan(benchmark::State& state) {
  const int64_t batch = state.range(0);
  std::shared_ptr<const serve::FrozenModel> model = SharedModel();
  const Inputs& in = InputsFor(batch);
  // Build (and cache) the plan outside the timed loop: construction cost
  // is paid once per (model, batch) and amortized across every request.
  model->PlanFor(batch);
  double total_s = 0.0;
  std::vector<double> iter_ms;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(model->Predict(in.x, in.tod));
    const double s = SecondsSince(t0);
    total_s += s;
    iter_ms.push_back(1e3 * s);
  }
  std::sort(iter_ms.begin(), iter_ms.end());
  Scenario& scenario = Scenarios()[ScenarioName(batch)];
  scenario.plan_ms = 1e3 * total_s / static_cast<double>(iter_ms.size());
  scenario.plan_p50_ms = bench::PercentileSorted(iter_ms, 50.0);
  scenario.plan_p99_ms = bench::PercentileSorted(iter_ms, 99.0);
}
BENCHMARK(BM_RolloutPlan)
    ->ArgNames({"batch"})
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

/// Replay-equals-eager and arena-stability invariants, checked once after
/// the timed runs. Returns false (and explains on stderr) on violation.
bool CheckInvariants(int* replay_matches, int* arena_stable,
                     long long* high_water) {
  std::shared_ptr<const serve::FrozenModel> model = SharedModel();
  bool ok = true;
  *replay_matches = 1;
  for (int64_t batch : {int64_t{1}, int64_t{8}}) {
    const Inputs& in = InputsFor(batch);
    tensor::Tensor planned = model->Predict(in.x, in.tod);
    tensor::Tensor eager = model->PredictEager(in.x, in.tod);
    if (std::memcmp(planned.data(), eager.data(),
                    sizeof(float) * planned.size()) != 0) {
      std::fprintf(stderr,
                   "[rollout] plan replay diverges from eager at batch %lld\n",
                   static_cast<long long>(batch));
      *replay_matches = 0;
      ok = false;
    }
  }
  // After the runs above every plan is warm: further ticks must not move
  // the process-wide arena high-water mark (zero per-step allocation).
  const Inputs& in = InputsFor(8);
  model->Predict(in.x, in.tod);
  const int64_t before = utils::ScratchArena::ProcessHighWater();
  for (int tick = 0; tick < 5; ++tick) model->Predict(in.x, in.tod);
  const int64_t after = utils::ScratchArena::ProcessHighWater();
  *arena_stable = before == after ? 1 : 0;
  *high_water = static_cast<long long>(after);
  if (before != after) {
    std::fprintf(stderr,
                 "[rollout] arena high-water moved across ticks: %lld -> "
                 "%lld bytes\n",
                 static_cast<long long>(before),
                 static_cast<long long>(after));
    ok = false;
  }
  return ok;
}

bool WriteSummaryJson(const std::string& path, int replay_matches,
                      int arena_stable, long long high_water) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[rollout] cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"rollout\": {\n");
  size_t emitted = 0;
  for (const auto& [name, s] : Scenarios()) {
    const double speedup = s.plan_ms > 0.0 ? s.eager_ms / s.plan_ms : 0.0;
    std::fprintf(f,
                 "    \"%s\": {\"eager_ms\": %.4f, \"plan_ms\": %.4f, "
                 "\"speedup\": %.3f, \"eager_p50_ms\": %.4f, "
                 "\"eager_p99_ms\": %.4f, \"plan_p50_ms\": %.4f, "
                 "\"plan_p99_ms\": %.4f}%s\n",
                 name.c_str(), s.eager_ms, s.plan_ms, speedup, s.eager_p50_ms,
                 s.eager_p99_ms, s.plan_p50_ms, s.plan_p99_ms,
                 ++emitted < Scenarios().size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"invariants\": {\"replay_matches_eager\": %d, "
               "\"arena_stable_across_ticks\": %d, "
               "\"arena_high_water_bytes\": %lld}\n}\n",
               replay_matches, arena_stable, high_water);
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace sagdfn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  int replay_matches = 0;
  int arena_stable = 0;
  long long high_water = 0;
  const bool invariants_ok =
      sagdfn::CheckInvariants(&replay_matches, &arena_stable, &high_water);
  if (!sagdfn::WriteSummaryJson("BENCH_rollout_fusion.json", replay_matches,
                                arena_stable, high_water)) {
    return 1;
  }
  std::fprintf(stderr,
               "[rollout] fusion summary written to "
               "BENCH_rollout_fusion.json\n");
  benchmark::Shutdown();
  return invariants_ok ? 0 : 1;
}
