// Reproduces paper Table I: computation and memory complexity of
// adaptive-weight-GNN forecasting methods, plus the Example 1 / Example 2
// byte-level accounting and a measured scaling check of slim vs dense
// graph construction.
#include <iostream>

#include "bench_common.h"
#include "core/memory_model.h"
#include "core/ssma.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"
#include "utils/stopwatch.h"
#include "utils/string_util.h"

namespace sagdfn::bench {
namespace {

void PrintComplexityTable() {
  utils::TablePrinter table(
      {"Model", "Computation Complexity", "Memory Complexity"});
  for (auto family :
       {core::ModelFamily::kAgcrn, core::ModelFamily::kGts,
        core::ModelFamily::kStep, core::ModelFamily::kSagdfn}) {
    core::ComplexityFormula formula = core::FormulaFor(family);
    table.AddRow({core::FamilyName(family), formula.computation,
                  formula.memory});
  }
  std::cout << "Table I: complexity of adaptive-weight-GNN methods\n"
            << table.ToString() << "\n";
}

void PrintExampleAccounting(const BenchConfig& config) {
  // Example 1 (dense, N = 2000) vs Example 2 (slim, M = 100).
  core::MemoryParams params;
  params.num_nodes = 2000;
  params.batch = 64;
  params.window = 24;
  params.hidden = 64;
  params.embedding = 100;
  params.m = 100;

  utils::TablePrinter table({"Quantity", "Dense (Example 1)",
                             "Slim (Example 2)", "Reduction"});
  const double hidden_dense = static_cast<double>(params.batch) *
                              params.num_nodes * params.window *
                              params.hidden * 4.0;
  const double hidden_slim = static_cast<double>(params.batch) * params.m *
                             params.window * params.hidden * 4.0;
  table.AddRow({"hidden state variable (B x N|M x T x D)",
                utils::FormatBytes(hidden_dense),
                utils::FormatBytes(hidden_slim),
                utils::FormatDouble(hidden_dense / hidden_slim, 1) + "x"});
  const double emb_dense = static_cast<double>(params.num_nodes) *
                           params.num_nodes * params.embedding * 4.0;
  const double emb_slim = static_cast<double>(params.num_nodes) * params.m *
                          params.embedding * 4.0;
  table.AddRow({"pairwise embedding buffer (N x N|M x d)",
                utils::FormatBytes(emb_dense),
                utils::FormatBytes(emb_slim),
                utils::FormatDouble(emb_dense / emb_slim, 1) + "x"});

  const auto dense_total = core::EstimateTrainingMemory(
      core::ModelFamily::kGts, params);
  const auto slim_total = core::EstimateTrainingMemory(
      core::ModelFamily::kSagdfn, params);
  table.AddRow({"estimated training footprint",
                utils::FormatBytes(dense_total.total_bytes()),
                utils::FormatBytes(slim_total.total_bytes()),
                utils::FormatDouble(dense_total.total_bytes() /
                                        slim_total.total_bytes(),
                                    1) +
                    "x"});
  std::cout << "Example 1 vs Example 2 accounting (N=2000, M=100, "
            << "B=64, T=24, D=64, d=100; budget "
            << utils::FormatBytes(config.oom_budget_bytes) << ")\n"
            << table.ToString() << "\n";
}

void MeasuredScaling(const BenchConfig& config) {
  // Measured cost of building the spatial correlation structure: slim
  // [N, M] SSMA vs a dense [N, N] pairwise construction, growing N.
  std::cout << "Measured graph-construction cost (forward pass seconds; "
               "M=16 columns for SAGDFN)\n";
  utils::TablePrinter table({"N", "dense NxN pairwise (s)",
                             "slim NxM SSMA (s)", "speedup"});
  std::vector<int64_t> sizes =
      config.full ? std::vector<int64_t>{200, 400, 800, 1600}
                  : std::vector<int64_t>{100, 200, 400};
  for (int64_t n : sizes) {
    utils::Rng rng(1);
    const int64_t d = 12;
    const int64_t m = 16;
    // Dense: [N, N, 2d] pairwise concat + reduction (GTS-class cost).
    tensor::Tensor e = tensor::Tensor::Normal(
        tensor::Shape({n, d}), rng);
    utils::Stopwatch dense_watch;
    {
      autograd::NoGradGuard guard;
      autograd::Variable ev(e);
      autograd::Variable rows = autograd::Expand(
          autograd::Reshape(ev, {n, 1, d}), tensor::Shape({n, n, d}));
      autograd::Variable cols = autograd::Expand(
          autograd::Reshape(ev, {1, n, d}), tensor::Shape({n, n, d}));
      autograd::Variable pair = autograd::Concat({rows, cols}, 2);
      autograd::Variable scores = autograd::Sum(pair, 2);
      (void)scores;
    }
    const double dense_seconds = dense_watch.ElapsedSeconds();

    core::SsmaConfig ssma_config;
    ssma_config.embedding_dim = d;
    ssma_config.m = m;
    ssma_config.heads = 2;
    ssma_config.ffn_hidden = 8;
    core::SparseSpatialAttention ssma(ssma_config, rng);
    std::vector<int64_t> index_set(m);
    for (int64_t i = 0; i < m; ++i) index_set[i] = i;
    utils::Stopwatch slim_watch;
    {
      autograd::NoGradGuard guard;
      ssma.Forward(autograd::Variable(e), index_set);
    }
    const double slim_seconds = slim_watch.ElapsedSeconds();
    table.AddRow({std::to_string(n),
                  utils::FormatDouble(dense_seconds, 4),
                  utils::FormatDouble(slim_seconds, 4),
                  utils::FormatDouble(dense_seconds /
                                          std::max(slim_seconds, 1e-9),
                                      1) +
                      "x"});
  }
  std::cout << table.ToString() << "\n";
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  auto config = sagdfn::bench::ParseBenchConfig(argc, argv);
  sagdfn::bench::PrintHeader(
      "Table I: complexity of adaptive-weight-GNN forecasting methods",
      config);
  sagdfn::bench::PrintComplexityTable();
  sagdfn::bench::PrintExampleAccounting(config);
  sagdfn::bench::MeasuredScaling(config);
  return 0;
}
