// Reproduces paper Figure 2: "Diffusion threshold M for Sensor 883 of
// London2000" — a sensor's diffused features barely change once the
// neighborhood grows past a small threshold, which justifies M ~ 5% of N.
//
// Protocol: train one SAGDFN with a generous M, sort the probe sensor's
// learned attention weights, and recompute its diffused representation
// (D+I)^{-1}(A_s X_I + X) using only the strongest m columns for growing
// m. The relative feature change per added neighbor collapses once the
// few significant neighbors are in — the marginal neighbor contributes
// (almost) nothing.
#include <cmath>
#include <iostream>
#include <numeric>

#include "baselines/neural_forecaster.h"
#include "bench_common.h"
#include "core/sagdfn.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::bench {
namespace {

/// Diffused features of `sensor` using only the `keep` strongest columns
/// of its adjacency row (others zeroed).
std::vector<double> TruncatedDiffusion(
    const tensor::Tensor& a_s, const std::vector<int64_t>& index_set,
    const tensor::Tensor& x, int64_t sensor, int64_t keep) {
  const int64_t m = a_s.dim(1);
  // Rank columns by |weight| for this sensor's row.
  std::vector<int64_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  const float* row = a_s.data() + sensor * m;
  std::sort(order.begin(), order.end(), [row](int64_t a, int64_t b) {
    return std::fabs(row[a]) > std::fabs(row[b]);
  });

  tensor::Tensor truncated = a_s.Clone();
  float* pt = truncated.data() + sensor * m;
  for (int64_t j = keep; j < m; ++j) pt[order[j]] = 0.0f;

  tensor::Tensor gathered = tensor::IndexSelect(x, 1, index_set);
  tensor::Tensor mixed =
      tensor::Add(tensor::BatchedMatMul(truncated, gathered), x);
  tensor::Tensor degrees =
      tensor::Sum(tensor::Abs(truncated), 1, /*keepdim=*/true);
  tensor::Tensor inv =
      tensor::Div(tensor::Tensor::Ones(degrees.shape()),
                  tensor::AddScalar(degrees, 1.0f));
  tensor::Tensor diffused = tensor::Mul(mixed, inv);
  std::vector<double> features;
  for (int64_t c = 0; c < diffused.dim(2); ++c) {
    features.push_back(diffused.At({0, sensor, c}));
  }
  return features;
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  if (!config.full) {
    if (config.max_nodes == 0) config.max_nodes = 128;
    if (config.epochs == 0) config.epochs = 4;
    if (config.max_train_batches == 0) config.max_train_batches = 15;
  }
  bench::PrintHeader("Figure 2: diffusion threshold M for one sensor",
                     config);

  data::ForecastDataset dataset =
      bench::LoadDataset("london2000-sim", config);
  const int64_t sensor =
      std::min<int64_t>(dataset.num_nodes() - 1, 88);  // "Sensor 883"
  std::cout << "dataset: " << dataset.num_nodes()
            << " nodes; probing sensor " << sensor << "\n\n";

  // One trained model with a generous neighborhood.
  baselines::ModelSizing sizing = bench::MakeModelSizing(config);
  sizing.sagdfn_m = config.full ? 150 : 32;
  sizing.sagdfn_k = (sizing.sagdfn_m * 4) / 5;
  auto forecaster = baselines::MakeSagdfnForecaster(
      "SAGDFN", sizing, [](core::SagdfnConfig*) {});
  bench::ModelRun run =
      bench::RunForecaster(*forecaster, dataset, config, {3});
  auto* neural =
      dynamic_cast<baselines::NeuralForecaster*>(forecaster.get());
  auto* model = dynamic_cast<core::SagdfnModel*>(neural->model());
  std::cout << "trained with M = " << sizing.sagdfn_m << " (test H3 MAE "
            << utils::FormatDouble(run.horizon_scores[0].mae, 2) << ")\n\n";

  autograd::NoGradGuard guard;
  tensor::Tensor a_s = model->ComputeSlimAdjacency();
  data::Batch batch = dataset.GetBatch(data::Split::kTest, 0, 1);
  tensor::Tensor x = tensor::Slice(batch.x, 1,
                                   dataset.spec().history - 1,
                                   dataset.spec().history)
                         .Reshape({1, dataset.num_nodes(), 2});

  std::vector<int64_t> m_values =
      config.full ? std::vector<int64_t>{5, 10, 20, 50, 100, 150}
                  : std::vector<int64_t>{2, 4, 8, 16, 24, 32};
  utils::TablePrinter table({"neighbors kept (m)", "feature L2 norm",
                             "distance to full-M features"});
  std::vector<double> full_features = bench::TruncatedDiffusion(
      a_s, model->index_set(), x, sensor, a_s.dim(1));
  double full_norm = 0.0;
  for (double f : full_features) full_norm += f * f;
  full_norm = std::max(std::sqrt(full_norm), 1e-9);
  for (int64_t m : m_values) {
    std::vector<double> features = bench::TruncatedDiffusion(
        a_s, model->index_set(), x, sensor, m);
    double norm = 0.0;
    double diff = 0.0;
    for (size_t c = 0; c < features.size(); ++c) {
      norm += features[c] * features[c];
      diff += (features[c] - full_features[c]) *
              (features[c] - full_features[c]);
    }
    table.AddRow({std::to_string(m),
                  utils::FormatDouble(std::sqrt(norm), 4),
                  utils::FormatDouble(
                      100.0 * std::sqrt(diff) / full_norm, 2) +
                      "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper Fig. 2): the distance to the "
               "full-neighborhood representation falls steeply for the "
               "first few significant neighbors and flattens well before "
               "m reaches M — additional neighbors barely move the "
               "diffused signal, so M ~ 5% of N suffices.\n";
  return 0;
}
