// Reproduces paper Figure 4: visualization of SAGDFN predictions against
// ground truth on METR-LA and CARPARK1918 (simulated stand-ins). Emits
// CSV series (fig4_<dataset>.csv) and prints a coarse ASCII preview.
#include <fstream>
#include <iostream>

#include "baselines/neural_forecaster.h"
#include "bench_common.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::bench {
namespace {

void Visualize(const std::string& dataset_name, const BenchConfig& config,
               int64_t sensor) {
  data::ForecastDataset dataset = LoadDataset(dataset_name, config);
  sensor = std::min<int64_t>(sensor, dataset.num_nodes() - 1);

  BenchConfig eval_config = config;
  // Visualization wants a contiguous stretch: widen the eval cap.
  eval_config.max_eval_batches = config.full ? 0 : 24;
  auto forecaster =
      baselines::MakeForecaster("SAGDFN", MakeModelSizing(eval_config));
  forecaster->Fit(dataset, MakeFitOptions(eval_config));
  tensor::Tensor pred =
      forecaster->Predict(dataset, data::Split::kTest,
                          eval_config.max_eval_batches *
                              eval_config.batch_size);
  tensor::Tensor truth =
      baselines::CollectTruth(dataset, data::Split::kTest, pred.dim(0));

  // Horizon-1 predictions across consecutive windows form a contiguous
  // series (window offsets step by one).
  const int64_t steps = pred.dim(0);
  const std::string path = "fig4_" + dataset_name + ".csv";
  std::ofstream out(path);
  out << "t,truth,prediction\n";
  double min_v = 1e30;
  double max_v = -1e30;
  std::vector<double> t_series(steps);
  std::vector<double> p_series(steps);
  for (int64_t t = 0; t < steps; ++t) {
    t_series[t] = truth.At({t, 0, sensor});
    p_series[t] = pred.At({t, 0, sensor});
    min_v = std::min({min_v, t_series[t], p_series[t]});
    max_v = std::max({max_v, t_series[t], p_series[t]});
    out << t << "," << t_series[t] << "," << p_series[t] << "\n";
  }
  std::cout << dataset_name << ", sensor " << sensor << ": " << steps
            << " horizon-1 steps written to " << path << "\n";

  // ASCII preview: 12 buckets, truth '*' and prediction 'o'.
  const int64_t preview = std::min<int64_t>(steps, 60);
  const double span = std::max(max_v - min_v, 1e-9);
  for (int64_t row = 11; row >= 0; --row) {
    std::string line(preview, ' ');
    for (int64_t t = 0; t < preview; ++t) {
      const int tb = static_cast<int>(11.0 * (t_series[t] - min_v) / span);
      const int pb = static_cast<int>(11.0 * (p_series[t] - min_v) / span);
      if (pb == row) line[t] = 'o';
      if (tb == row) line[t] = '*';  // truth wins ties
    }
    std::cout << "  |" << line << "|\n";
  }
  std::cout << "  (*: ground truth, o: SAGDFN prediction)\n\n";
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  if (!config.full) {
    if (config.max_nodes == 0) config.max_nodes = 128;
    if (config.epochs == 0) config.epochs = 4;
    if (config.max_train_batches == 0) config.max_train_batches = 15;
  }
  bench::PrintHeader(
      "Figure 4: visualizations on METR-LA & CARPARK1918 (simulated)",
      config);
  bench::Visualize("metr-la-sim", config, 7);
  bench::Visualize("carpark1918-sim", config, 11);
  std::cout << "Expected shape (paper Fig. 4): predictions track both the "
               "short-term peaks/dips and the daily cycle while staying "
               "smoother than the noisy ground truth.\n";
  return 0;
}
