// Ablations of this implementation's own design choices (beyond the
// paper's Table VIII), as called out in DESIGN.md:
//   1. entmax bisection iteration count (accuracy/cost of the tau solve),
//   2. exploration slots M - K in the neighbor sampler,
//   3. the convergence-iteration curriculum r (freeze vs never freeze),
//   4. shared global index set at M << N vs M = N (no selection at all).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/entmax.h"
#include "core/sagdfn.h"
#include "utils/stopwatch.h"

namespace sagdfn::bench {
namespace {

void BisectionIterations() {
  std::cout << "(1) entmax bisection iterations: simplex-sum error and "
               "cost (alpha = 1.5, 512 x 64 logits)\n";
  utils::Rng rng(1);
  tensor::Tensor z =
      tensor::Tensor::Normal(tensor::Shape({512, 64}), rng, 0.0f, 2.0f);
  utils::TablePrinter table(
      {"iterations", "max |sum - 1| pre-normalization", "seconds"});
  for (int iters : {5, 10, 20, 50}) {
    utils::Stopwatch watch;
    tensor::Tensor p = core::EntmaxForward(z, 1.5f, 1, iters);
    const double seconds = watch.ElapsedSeconds();
    // EntmaxForward renormalizes; measure the raw bisection residual by
    // solving with one fewer normalization step: compare against the
    // 200-iteration reference instead.
    tensor::Tensor ref = core::EntmaxForward(z, 1.5f, 1, 200);
    double max_err = 0.0;
    for (int64_t i = 0; i < p.size(); ++i) {
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(p[i] - ref[i])));
    }
    table.AddRow({std::to_string(iters),
                  utils::FormatDouble(max_err, 6),
                  utils::FormatDouble(seconds, 4)});
  }
  std::cout << table.ToString() << "\n";
}

double ScoreVariant(const data::ForecastDataset& dataset,
                    const BenchConfig& config,
                    const baselines::ModelSizing& sizing,
                    const std::function<void(core::SagdfnConfig*)>& tweak,
                    double* fit_seconds) {
  auto forecaster =
      baselines::MakeSagdfnForecaster("SAGDFN", sizing, tweak);
  ModelRun run = RunForecaster(*forecaster, dataset, config, {3});
  if (fit_seconds != nullptr) *fit_seconds = run.fit_seconds;
  return run.horizon_scores[0].mae;
}

void ExplorationSlots(const data::ForecastDataset& dataset,
                      const BenchConfig& config) {
  std::cout << "(2) exploration slots M - K (M fixed)\n";
  baselines::ModelSizing sizing = MakeModelSizing(config);
  const int64_t m = sizing.sagdfn_m;
  utils::TablePrinter table({"K", "M - K", "H3 MAE"});
  for (int64_t k : {m, (3 * m) / 4, m / 2}) {
    baselines::ModelSizing s = sizing;
    s.sagdfn_k = std::max<int64_t>(1, k);
    double mae = ScoreVariant(dataset, config, s,
                              [](core::SagdfnConfig*) {}, nullptr);
    table.AddRow({std::to_string(s.sagdfn_k),
                  std::to_string(m - s.sagdfn_k),
                  utils::FormatDouble(mae, 2)});
    std::cerr << "[done] K=" << s.sagdfn_k << "\n";
  }
  std::cout << table.ToString() << "\n";
}

void ConvergenceCurriculum(const data::ForecastDataset& dataset,
                           const BenchConfig& config) {
  std::cout << "(3) convergence iteration r (fraction of training at "
               "which the index set freezes)\n";
  utils::TablePrinter table({"r", "H3 MAE"});
  struct Case {
    std::string label;
    int64_t value;
  };
  for (const Case& c :
       {Case{"freeze immediately (r=1)", 1},
        Case{"scheduled (60% of training)", 1 << 20},
        Case{"never freeze (r=inf)", (1 << 20) + 1}}) {
    baselines::ModelSizing s = MakeModelSizing(config);
    s.convergence_iters = c.value;
    // "never freeze": bypass the trainer's 60% schedule via the tweak.
    auto tweak = [&c](core::SagdfnConfig* cfg) {
      if (c.value == (1 << 20) + 1) {
        cfg->convergence_iters = 1 << 30;
      }
    };
    // The OnTrainingPlan cap still applies for the huge setting; that is
    // the scheduled behaviour we ship, so report it as such.
    double mae = ScoreVariant(dataset, config, s, tweak, nullptr);
    table.AddRow({c.label, utils::FormatDouble(mae, 2)});
    std::cerr << "[done] " << c.label << "\n";
  }
  std::cout << table.ToString() << "\n";
}

void SharedSetVsFullSet(const data::ForecastDataset& dataset,
                        const BenchConfig& config) {
  std::cout << "(4) slim shared index set (M << N) vs no selection "
               "(M = N): accuracy/cost trade-off of the paper's core "
               "approximation\n";
  utils::TablePrinter table({"M", "H3 MAE", "fit seconds"});
  const int64_t n = dataset.num_nodes();
  baselines::ModelSizing sizing = MakeModelSizing(config);
  for (int64_t m : {sizing.sagdfn_m, n}) {
    baselines::ModelSizing s = sizing;
    s.sagdfn_m = m;
    s.sagdfn_k = std::max<int64_t>(1, (m * 4) / 5);
    double fit_seconds = 0.0;
    double mae = ScoreVariant(dataset, config, s,
                              [](core::SagdfnConfig*) {}, &fit_seconds);
    table.AddRow({std::to_string(m), utils::FormatDouble(mae, 2),
                  utils::FormatDouble(fit_seconds, 1)});
    std::cerr << "[done] M=" << m << "\n";
  }
  std::cout << table.ToString() << "\n";
}

}  // namespace
}  // namespace sagdfn::bench

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader("Design-choice ablations (implementation-level)",
                     config);
  bench::BisectionIterations();
  data::ForecastDataset dataset =
      bench::LoadDataset("metr-la-sim", config);
  bench::ExplorationSlots(dataset, config);
  bench::ConvergenceCurriculum(dataset, config);
  bench::SharedSetVsFullSet(dataset, config);
  return 0;
}
