// Reproduces paper Table V: performance comparison on CARPARK1918
// (simulated stand-in). Models whose memory class OOMs at 1918 nodes on
// a 32 GB GPU are marked 'x'.
#include "bench_common.h"

int main(int argc, char** argv) {
  return sagdfn::bench::RunLargeDatasetTable(
      "carpark1918-sim", 1918,
      "Table V: performance comparison on CARPARK1918 (simulated)", argc,
      argv);
}
