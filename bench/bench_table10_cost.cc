// Reproduces paper Table X: computation cost on CARPARK1918 (simulated)
// — parameter counts, training seconds per epoch, and inference seconds
// for DCRNN, AGCRN, MTGNN, GTS, D2STGNN and SAGDFN.
#include <iostream>

#include "baselines/neural_forecaster.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  if (!config.full) {
    // Cost comparison needs relative timings, not converged accuracy;
    // keep the dense O(N^2) rows cheap.
    if (config.max_nodes == 0) config.max_nodes = 128;
    if (config.epochs == 0) config.epochs = 2;
    if (config.max_train_batches == 0) config.max_train_batches = 10;
  }
  bench::PrintHeader(
      "Table X: computation cost on CARPARK1918 (simulated)", config);
  // Mirrors the printed table as machine-readable JSON
  // (BENCH_table10_cost.json) plus per-kernel scoped-timer aggregates.
  bench::BenchTelemetry telemetry("table10_cost");

  data::ForecastDataset dataset =
      bench::LoadDataset("carpark1918-sim", config);
  std::cout << "dataset: " << dataset.num_nodes() << " nodes; timings are "
               "single-core CPU (the paper's are V100) — compare "
               "relatively across rows\n\n";

  utils::TablePrinter table({"Model", "# Parameters", "Train (s/epoch)",
                             "Inference (s)"});
  const std::vector<int64_t> horizons = {3};
  for (const std::string name :
       {"DCRNN", "AGCRN", "MTGNN", "GTS", "D2STGNN(c)", "SAGDFN"}) {
    auto forecaster = baselines::MakeForecaster(
        name, bench::MakeModelSizing(config));
    bench::ModelRun run =
        bench::RunForecaster(*forecaster, dataset, config, horizons);
    double seconds_per_epoch = 0.0;
    if (auto* neural =
            dynamic_cast<baselines::NeuralForecaster*>(forecaster.get())) {
      seconds_per_epoch = neural->train_result().seconds_per_epoch;
    }
    table.AddRow({name, std::to_string(run.parameter_count),
                  utils::FormatDouble(seconds_per_epoch, 2),
                  utils::FormatDouble(run.inference_seconds, 2)});
    std::cerr << "[done] " << name << "\n";
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper): SAGDFN has the fewest "
               "parameters and the lowest train/inference cost among the "
               "STGNNs.\n";
  return 0;
}
