// Reproduces paper Table VIII: ablation study on CARPARK1918 (simulated)
// — SAGDFN vs w/o Entmax, w/o Pair-Wise Attention, w/o SNS, and
// w/o SNS & SSMA (predefined correlation-topology adjacency, DCRNN-style).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Table VIII: ablation study on CARPARK1918 (simulated)", config);

  data::ForecastDataset dataset =
      bench::LoadDataset("carpark1918-sim", config);
  std::cout << "dataset: " << dataset.num_nodes() << " nodes\n\n";

  const std::vector<int64_t> horizons = {3, 6, 12};
  utils::TablePrinter table({"CARPARK1918", "H3 MAE", "H3 RMSE", "H3 MAPE",
                             "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE"});
  baselines::ModelSizing sizing = bench::MakeModelSizing(config);

  struct Variant {
    std::string name;
    std::function<void(core::SagdfnConfig*)> tweak;
  };
  std::vector<Variant> variants = {
      {"SAGDFN", [](core::SagdfnConfig*) {}},
      {"w/o Entmax",
       [](core::SagdfnConfig* c) { c->use_entmax = false; }},
      {"w/o Attention",
       [](core::SagdfnConfig* c) { c->use_attention = false; }},
      {"w/o SNS", [](core::SagdfnConfig* c) { c->use_sns = false; }},
  };
  for (const auto& variant : variants) {
    auto forecaster = baselines::MakeSagdfnForecaster(
        variant.name, sizing, variant.tweak);
    bench::ModelRun run =
        bench::RunForecaster(*forecaster, dataset, config, horizons);
    bench::AddScoreRow(table, run, horizons.size());
    std::cerr << "[done] " << variant.name << "\n";
  }

  // "w/o SNS & SSMA": DCRNN-style predefined topology (top-k correlation
  // graph), matching the paper's description of this variant.
  {
    auto forecaster = baselines::MakeForecaster("DCRNN", sizing);
    bench::ModelRun run =
        bench::RunForecaster(*forecaster, dataset, config, horizons);
    run.name = "w/o SNS & SSMA";
    bench::AddScoreRow(table, run, horizons.size());
    std::cerr << "[done] w/o SNS & SSMA\n";
  }

  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper, full scale): every ablation "
               "hurts; removing Entmax and removing SNS & SSMA hurt the "
               "most. At quick scale (M ~ 16 columns) the variants sit "
               "within noise of each other: entmax's advantage is noise "
               "suppression across many weak entries, which needs "
               "paper-scale M and N to materialize (see EXPERIMENTS.md).\n";
  return 0;
}
