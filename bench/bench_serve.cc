// Google-benchmark latency/throughput benchmarks for the batched
// inference engine (src/serve). Each BM_Serve* scenario replays a fixed
// request stream from concurrent clients through an InferenceEngine and
// records per-request end-to-end latency; after the run a compact
// summary (p50/p99 latency in microseconds plus request throughput per
// scenario) is written to BENCH_serve_latency.json so
// tools/check_bench_regression.py can compare it against the committed
// baseline in bench/baselines/.
//
// The model is small on purpose: the interesting numbers here are the
// engine's queueing/batching overheads and their trend across PRs, not
// the raw kernel cost (bench_micro_ops covers that).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sagdfn.h"
#include "serve/engine.h"
#include "serve/forecast_cache.h"
#include "serve/frozen_model.h"
#include "serve/tenant_router.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

// Engine knobs overridable from the command line (see main): --max_wait_us
// sets the batching window for every scenario; --max_batch, when positive,
// overrides each scenario's max_batch argument. Defaults reproduce the
// committed baseline numbers.
int64_t g_max_wait_us = 200;
int64_t g_max_batch = 0;
// --readers overrides the reader-thread count of the cached-read
// scenario (0 = use the registered benchmark argument).
int64_t g_readers = 0;

struct ScenarioSummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double throughput_rps = 0.0;
  int64_t requests = 0;
  // Serve-path failure/lifecycle counters (EngineStats): deadline
  // expiries, overload sheds, and model swaps/rollbacks seen during the
  // scenario. Zero for the plain latency scenarios; the swap scenario
  // asserts its own swap traffic through them.
  int64_t timed_out = 0;
  int64_t shed = 0;
  int64_t swaps = 0;
  int64_t rollbacks = 0;
};

void RecordEngineCounters(const serve::InferenceEngine& engine,
                          ScenarioSummary* summary,
                          benchmark::State& state) {
  const serve::EngineStats stats = engine.stats();
  summary->timed_out = stats.timed_out;
  summary->shed = stats.shed;
  summary->swaps = stats.swaps;
  summary->rollbacks = stats.rollbacks;
  state.counters["timed_out"] = static_cast<double>(stats.timed_out);
  state.counters["shed"] = static_cast<double>(stats.shed);
  state.counters["swaps"] = static_cast<double>(stats.swaps);
  state.counters["rollbacks"] = static_cast<double>(stats.rollbacks);
}

// Scenario name -> summary, written to BENCH_serve_latency.json by main().
std::map<std::string, ScenarioSummary>& Summaries() {
  static std::map<std::string, ScenarioSummary> summaries;
  return summaries;
}

core::SagdfnConfig BenchConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 32;
  config.embedding_dim = 8;
  config.m = 12;
  config.k = 8;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;
  config.seed = 7;
  return config;
}

// One frozen model shared by every scenario: latency depends on shapes,
// not on trained weights, so the randomly initialized model is enough.
std::shared_ptr<const serve::FrozenModel> SharedModel() {
  static std::shared_ptr<const serve::FrozenModel> model = [] {
    auto raw = std::make_unique<core::SagdfnModel>(BenchConfig());
    return std::shared_ptr<const serve::FrozenModel>(
        serve::FrozenModel::Freeze(std::move(raw)));
  }();
  return model;
}

struct RequestStream {
  std::vector<tensor::Tensor> xs;
  std::vector<tensor::Tensor> tods;
};

const RequestStream& SharedStream(int64_t count) {
  static std::map<int64_t, RequestStream> streams;
  auto it = streams.find(count);
  if (it != streams.end()) return it->second;
  const core::SagdfnConfig config = BenchConfig();
  utils::Rng rng(99);
  RequestStream stream;
  for (int64_t i = 0; i < count; ++i) {
    stream.xs.push_back(tensor::Tensor::Normal(
        tensor::Shape({config.history, config.num_nodes, 2}), rng));
    stream.tods.push_back(tensor::Tensor::Uniform(
        tensor::Shape({config.horizon}), rng, 0.0f, 1.0f));
  }
  return streams.emplace(count, std::move(stream)).first->second;
}

/// Sorts the scenario's latency sample ONCE and fills the summary
/// percentiles through the shared unbiased estimator
/// (bench::PercentileSorted) — one sort per scenario instead of one per
/// percentile query, and no +0.5 index bias.
void FillLatencyPercentiles(std::vector<double>* latencies_us,
                            ScenarioSummary* summary) {
  std::sort(latencies_us->begin(), latencies_us->end());
  summary->p50_us = bench::PercentileSorted(*latencies_us, 50.0);
  summary->p99_us = bench::PercentileSorted(*latencies_us, 99.0);
  summary->requests = static_cast<int64_t>(latencies_us->size());
}

/// Replays `requests` windows from `clients` submitter threads and
/// appends each request's end-to-end latency to `latencies_us`. Returns
/// the wall-clock seconds for the whole replay.
double ReplayOnce(serve::InferenceEngine& engine, int64_t requests,
                  int64_t clients, std::vector<double>* latencies_us) {
  const RequestStream& stream = SharedStream(requests);
  std::vector<std::future<serve::Forecast>> futures(requests);
  std::vector<std::chrono::steady_clock::time_point> started(requests);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = c; i < requests; i += clients) {
        started[i] = std::chrono::steady_clock::now();
        futures[i] = engine.Submit(stream.xs[i], stream.tods[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int64_t i = 0; i < requests; ++i) {
    futures[i].wait();
    latencies_us->push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - started[i])
            .count());
  }
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - wall_start)
      .count();
}

/// workers x max_batch sweep: the engine's end-to-end request latency
/// under a bursty 4-client load.
void BM_ServeLatency(benchmark::State& state) {
  const int64_t workers = state.range(0);
  const int64_t max_batch = g_max_batch > 0 ? g_max_batch : state.range(1);
  const int64_t requests = 64;
  serve::EngineOptions options;
  options.num_workers = workers;
  options.max_batch = max_batch;
  options.max_wait_us = g_max_wait_us;
  serve::InferenceEngine engine(SharedModel(), options);

  std::vector<double> latencies_us;
  double wall_s = 0.0;
  for (auto _ : state) {
    wall_s += ReplayOnce(engine, requests, /*clients=*/4, &latencies_us);
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  RecordEngineCounters(engine, &summary, state);
  Summaries()["serve.w" + std::to_string(workers) + ".b" +
              std::to_string(max_batch)] = summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
}
BENCHMARK(BM_ServeLatency)
    ->ArgNames({"workers", "batch"})
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Low-wait sweep: how much of the batching window (max_wait_us) the
/// engine actually needs under the same bursty load. wait=0 degenerates
/// to take-what's-queued batching; the gap between wait=0 and the
/// default 200us shows the latency cost of waiting for fuller batches.
void BM_ServeLowWaitSweep(benchmark::State& state) {
  const int64_t wait_us = state.range(0);
  const int64_t requests = 64;
  serve::EngineOptions options;
  options.num_workers = 2;
  options.max_batch = g_max_batch > 0 ? g_max_batch : 8;
  options.max_wait_us = wait_us;
  serve::InferenceEngine engine(SharedModel(), options);

  std::vector<double> latencies_us;
  double wall_s = 0.0;
  for (auto _ : state) {
    wall_s += ReplayOnce(engine, requests, /*clients=*/4, &latencies_us);
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  RecordEngineCounters(engine, &summary, state);
  Summaries()["serve.lowwait.wait" + std::to_string(wait_us)] = summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
}
BENCHMARK(BM_ServeLowWaitSweep)
    ->ArgNames({"wait_us"})
    ->Arg(0)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Hot-swap cost: the 4-client replay with a model swap landing in the
/// middle of every iteration. Measures what a registry publish does to
/// request latency (the answer should be "nothing visible": swaps are a
/// pointer exchange; in-flight batches finish on their pinned snapshot).
void BM_ServeSwapUnderLoad(benchmark::State& state) {
  const int64_t requests = 64;
  serve::EngineOptions options;
  options.num_workers = 2;
  options.max_batch = g_max_batch > 0 ? g_max_batch : 8;
  options.max_wait_us = g_max_wait_us;
  serve::InferenceEngine engine(SharedModel(), options);
  // A second snapshot with the same shapes: alternate swaps between the
  // two so every iteration pays one full swap.
  auto other = std::shared_ptr<const serve::FrozenModel>(
      serve::FrozenModel::Freeze(
          std::make_unique<core::SagdfnModel>(BenchConfig())));
  const std::shared_ptr<const serve::FrozenModel> snapshots[2] = {
      other, SharedModel()};

  std::vector<double> latencies_us;
  double wall_s = 0.0;
  int64_t iteration = 0;
  for (auto _ : state) {
    std::thread swapper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (!engine.SwapModel(snapshots[iteration % 2]).ok()) {
        state.SkipWithError("SwapModel failed");
      }
    });
    wall_s += ReplayOnce(engine, requests, /*clients=*/4, &latencies_us);
    swapper.join();
    ++iteration;
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  RecordEngineCounters(engine, &summary, state);
  Summaries()["serve.swap_under_load"] = summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
}
BENCHMARK(BM_ServeSwapUnderLoad)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Unbatched floor: the same windows one at a time straight through
/// FrozenModel::Predict on the caller thread — what the engine's
/// batching and queueing overheads are measured against.
void BM_ServeUnbatchedBaseline(benchmark::State& state) {
  const int64_t requests = 64;
  const RequestStream& stream = SharedStream(requests);
  std::shared_ptr<const serve::FrozenModel> model = SharedModel();
  const core::SagdfnConfig& config = model->config();
  std::vector<double> latencies_us;
  double wall_s = 0.0;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < requests; ++i) {
      const auto start = std::chrono::steady_clock::now();
      tensor::Tensor x(tensor::Shape(
          {1, config.history, config.num_nodes, 2}));
      std::copy(stream.xs[i].data(), stream.xs[i].data() + stream.xs[i].size(),
                x.data());
      tensor::Tensor tod(tensor::Shape({1, config.horizon}));
      std::copy(stream.tods[i].data(),
                stream.tods[i].data() + stream.tods[i].size(), tod.data());
      benchmark::DoNotOptimize(model->Predict(x, tod));
      latencies_us.push_back(
          std::chrono::duration_cast<
              std::chrono::duration<double, std::micro>>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    wall_s += std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  Summaries()["serve.unbatched"] = summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
}
BENCHMARK(BM_ServeUnbatchedBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Replays `requests` windows through a TenantRouter for one tenant from
/// `clients` submitter threads; same latency accounting as ReplayOnce.
double RouterReplayOnce(serve::TenantRouter& router, const std::string& tenant,
                        int64_t requests, int64_t clients,
                        std::vector<double>* latencies_us) {
  const RequestStream& stream = SharedStream(requests);
  std::vector<std::future<serve::Forecast>> futures(requests);
  std::vector<std::chrono::steady_clock::time_point> started(requests);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int64_t i = c; i < requests; i += clients) {
        started[i] = std::chrono::steady_clock::now();
        futures[i] = router.Submit(tenant, stream.xs[i], stream.tods[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int64_t i = 0; i < requests; ++i) {
    futures[i].wait();
    latencies_us->push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - started[i])
            .count());
  }
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - wall_start)
      .count();
}

/// Multi-tenant isolation cost at EQUAL AGGREGATE LOAD: the 4-client
/// 64-request replay served to ONE tenant on an otherwise idle router
/// (the single-tenant reference), then the same 64 requests split
/// across four tenants at once — each tenant's own client submitting
/// its quarter of the stream concurrently against its own engine. Total
/// offered work and total client threads are identical in both legs, so
/// the comparison measures what per-tenant partitioning (separate
/// queues, workers, registries) costs over pooling everything in one
/// engine — not the machine's capacity to run 4x the load. Each
/// tenant's p50/p99 is recorded separately (serve.tenant.multi.<id>)
/// next to the reference (serve.tenant.single);
/// check_bench_regression.py gates, from the fresh run alone, that no
/// tenant's p99 exceeds 2x the single-tenant p99 — the "noisy neighbors
/// cost at most one doubling" fairness bound.
void BM_ServeMultiTenant(benchmark::State& state) {
  const std::vector<std::string> ids = {"metr-la-sim", "london2000",
                                        "newyork2000", "carpark"};
  const int64_t requests = 64;
  const int64_t per_tenant =
      requests / static_cast<int64_t>(ids.size());
  serve::TenantConfig tenant_config;
  tenant_config.engine.num_workers = 2;
  tenant_config.engine.max_batch = g_max_batch > 0 ? g_max_batch : 8;
  tenant_config.engine.max_wait_us = g_max_wait_us;

  std::vector<double> single_us;
  std::map<std::string, std::vector<double>> multi_us;
  for (const std::string& id : ids) multi_us[id];  // pre-insert: the tenant
  // threads below only touch their own pre-existing vector.
  double single_wall_s = 0.0;
  double multi_wall_s = 0.0;
  for (auto _ : state) {
    {
      serve::TenantRouter router;
      if (!router.AddTenant("solo", SharedModel(), tenant_config).ok()) {
        state.SkipWithError("AddTenant(solo) failed");
        return;
      }
      single_wall_s +=
          RouterReplayOnce(router, "solo", requests, /*clients=*/4,
                           &single_us);
    }
    {
      serve::TenantRouter router;
      for (const std::string& id : ids) {
        if (!router.AddTenant(id, SharedModel(), tenant_config).ok()) {
          state.SkipWithError("AddTenant failed");
          return;
        }
      }
      const auto wall_start = std::chrono::steady_clock::now();
      std::vector<std::thread> tenants;
      for (const std::string& id : ids) {
        tenants.emplace_back([&, id] {
          RouterReplayOnce(router, id, per_tenant, /*clients=*/1,
                           &multi_us[id]);
        });
      }
      for (auto& t : tenants) t.join();
      multi_wall_s +=
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
    }
  }

  ScenarioSummary single;
  FillLatencyPercentiles(&single_us, &single);
  single.throughput_rps =
      single_wall_s > 0.0
          ? static_cast<double>(single.requests) / single_wall_s
          : 0.0;
  Summaries()["serve.tenant.single"] = single;
  state.counters["single_p99_us"] = single.p99_us;
  double worst_p99 = 0.0;
  for (const std::string& id : ids) {
    ScenarioSummary summary;
    FillLatencyPercentiles(&multi_us[id], &summary);
    summary.throughput_rps =
        multi_wall_s > 0.0
            ? static_cast<double>(summary.requests) / multi_wall_s
            : 0.0;
    Summaries()["serve.tenant.multi." + id] = summary;
    worst_p99 = std::max(worst_p99, summary.p99_us);
  }
  state.counters["worst_multi_p99_us"] = worst_p99;
  state.counters["fairness_ratio"] =
      single.p99_us > 0.0 ? worst_p99 / single.p99_us : 0.0;
}
BENCHMARK(BM_ServeMultiTenant)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Builds a warm streaming scenario: a TickStreamer fed `warmup_ticks`
/// frames (at least `history`, so the cache holds a published forecast)
/// over a deterministic frame stream. Returns the frames so callers can
/// keep ticking.
struct StreamingScenario {
  std::shared_ptr<const serve::FrozenModel> model;
  std::unique_ptr<serve::ForecastCache> cache;
  std::unique_ptr<serve::TickStreamer> streamer;
  std::vector<tensor::Tensor> frames;
  tensor::Tensor tod;
};

StreamingScenario MakeStreamingScenario(int64_t total_ticks,
                                        int64_t warmup_ticks,
                                        serve::TickStreamerOptions options) {
  const core::SagdfnConfig config = BenchConfig();
  StreamingScenario s;
  s.model = SharedModel();
  s.cache = std::make_unique<serve::ForecastCache>();
  s.streamer = std::make_unique<serve::TickStreamer>(s.model, s.cache.get(),
                                                     options);
  utils::Rng rng(41);
  for (int64_t i = 0; i < total_ticks; ++i) {
    s.frames.push_back(tensor::Tensor::Normal(
        tensor::Shape({config.num_nodes, 2}), rng));
  }
  s.tod = tensor::Tensor::Uniform(tensor::Shape({config.horizon}), rng, 0.0f,
                                  1.0f);
  for (int64_t i = 0; i < warmup_ticks; ++i) {
    s.streamer->OnTick(s.frames[i], s.tod);
  }
  return s;
}

/// The production read path: ≥1k concurrent reader threads hammering
/// one scenario's lock-free forecast cache while a single writer keeps
/// ticking. Every read's latency is timed around ForecastCache::Read()
/// alone; the cache is warm before the readers start, so the sample is
/// the cache-HIT latency distribution (the acceptance bar: hit p99
/// within 5x of the unbatched single-request p50). Reader count is
/// overridable with --readers.
void BM_ServeCachedReads(benchmark::State& state) {
  const int64_t readers = g_readers > 0 ? g_readers : state.range(0);
  const int64_t reads_per_reader = 32;
  const core::SagdfnConfig config = BenchConfig();
  StreamingScenario scenario = MakeStreamingScenario(
      /*total_ticks=*/config.history + 64, /*warmup_ticks=*/config.history,
      serve::TickStreamerOptions{});

  std::vector<double> latencies_us;
  int64_t stale_reads = 0;
  double wall_s = 0.0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_reader(readers);
    std::atomic<bool> stop_writer{false};
    const auto wall_start = std::chrono::steady_clock::now();
    // One writer advances the tick loop (incremental encoder) while the
    // readers run, exactly the production cadence.
    std::thread writer([&] {
      int64_t next = config.history;
      while (!stop_writer.load(std::memory_order_relaxed)) {
        scenario.streamer->OnTick(
            scenario.frames[next % scenario.frames.size()], scenario.tod);
        ++next;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
    std::vector<std::thread> threads;
    threads.reserve(readers);
    std::atomic<int64_t> misses{0};
    for (int64_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        per_reader[r].reserve(reads_per_reader);
        for (int64_t i = 0; i < reads_per_reader; ++i) {
          const auto start = std::chrono::steady_clock::now();
          std::shared_ptr<const serve::TickForecast> f =
              scenario.cache->Read();
          const auto end = std::chrono::steady_clock::now();
          if (f == nullptr) {
            misses.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          benchmark::DoNotOptimize(f->prediction.data());
          per_reader[r].push_back(
              std::chrono::duration_cast<
                  std::chrono::duration<double, std::micro>>(end - start)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
    stop_writer.store(true, std::memory_order_relaxed);
    writer.join();
    wall_s += std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
    for (auto& sample : per_reader) {
      latencies_us.insert(latencies_us.end(), sample.begin(), sample.end());
    }
    stale_reads += misses.load();
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  const serve::ForecastCache::Stats cache_stats = scenario.cache->stats();
  Summaries()["serve.cached_reads.r" + std::to_string(readers)] = summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
  state.counters["hits"] = static_cast<double>(cache_stats.hits);
  state.counters["misses"] =
      static_cast<double>(cache_stats.reads - cache_stats.hits);
  state.counters["stale_reads"] = static_cast<double>(stale_reads);
}
BENCHMARK(BM_ServeCachedReads)
    ->ArgNames({"readers"})
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

/// Writer-side tick cost: p50/p99 of one OnTick through the incremental
/// encoder (steady state) vs. through a forced full re-encode every
/// tick. The gap is what carrying the GRU hidden state buys per tick.
void BM_ServeTickAdvance(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const core::SagdfnConfig config = BenchConfig();
  serve::TickStreamerOptions options;
  options.full_reencode_every = incremental ? 0 : 1;
  const int64_t ticks = 48;
  StreamingScenario scenario = MakeStreamingScenario(
      /*total_ticks=*/config.history + ticks,
      /*warmup_ticks=*/config.history, options);

  std::vector<double> latencies_us;
  double wall_s = 0.0;
  int64_t next = config.history;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < ticks; ++i) {
      const auto start = std::chrono::steady_clock::now();
      scenario.streamer->OnTick(
          scenario.frames[next % scenario.frames.size()], scenario.tod);
      ++next;
      latencies_us.push_back(
          std::chrono::duration_cast<
              std::chrono::duration<double, std::micro>>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
    wall_s += std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  }
  ScenarioSummary summary;
  FillLatencyPercentiles(&latencies_us, &summary);
  summary.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(summary.requests) / wall_s : 0.0;
  Summaries()[incremental ? "serve.tick.incremental" : "serve.tick.full"] =
      summary;
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
  state.counters["rps"] = summary.throughput_rps;
}
BENCHMARK(BM_ServeTickAdvance)
    ->ArgNames({"incremental"})
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

utils::Status WriteSummaryJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return utils::Status::Internal("cannot open " + path);
  }
  std::fprintf(f, "{\n  \"serve\": {\n");
  size_t emitted = 0;
  for (const auto& [name, s] : Summaries()) {
    std::fprintf(f,
                 "    \"%s\": {\"p50_us\": %.3f, \"p99_us\": %.3f, "
                 "\"throughput_rps\": %.3f, \"requests\": %lld, "
                 "\"timed_out\": %lld, \"shed\": %lld, \"swaps\": %lld, "
                 "\"rollbacks\": %lld}%s\n",
                 name.c_str(), s.p50_us, s.p99_us, s.throughput_rps,
                 static_cast<long long>(s.requests),
                 static_cast<long long>(s.timed_out),
                 static_cast<long long>(s.shed),
                 static_cast<long long>(s.swaps),
                 static_cast<long long>(s.rollbacks),
                 ++emitted < Summaries().size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return utils::Status::Ok();
}

}  // namespace
}  // namespace sagdfn

int main(int argc, char** argv) {
  // Strip our engine-knob flags before google-benchmark sees (and
  // rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max_wait_us=", 0) == 0) {
      sagdfn::g_max_wait_us = std::stoll(arg.substr(14));
    } else if (arg.rfind("--max_batch=", 0) == 0) {
      sagdfn::g_max_batch = std::stoll(arg.substr(12));
    } else if (arg.rfind("--readers=", 0) == 0) {
      sagdfn::g_readers = std::stoll(arg.substr(10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  const sagdfn::utils::Status status =
      sagdfn::WriteSummaryJson("BENCH_serve_latency.json");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[serve] latency summary written to BENCH_serve_latency.json\n");
  benchmark::Shutdown();
  return 0;
}
