// Reproduces paper Table III: performance comparison on METR-LA
// (simulated stand-in) across all baselines and SAGDFN at horizons
// 3 / 6 / 12.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sagdfn;
  auto config = bench::ParseBenchConfig(argc, argv);
  bench::PrintHeader(
      "Table III: performance comparison on METR-LA (simulated)", config);

  data::ForecastDataset dataset =
      bench::LoadDataset("metr-la-sim", config);
  std::cout << "dataset: " << dataset.num_nodes() << " nodes, "
            << dataset.series().num_steps() << " steps\n\n";

  const std::vector<int64_t> horizons = {3, 6, 12};
  utils::TablePrinter table({"METR-LA", "H3 MAE", "H3 RMSE", "H3 MAPE",
                             "H6 MAE", "H6 RMSE", "H6 MAPE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE"});

  std::vector<std::string> models = baselines::PaperBaselineNames();
  models.push_back("SAGDFN");
  for (const auto& name : models) {
    bench::ModelRun run =
        bench::RunModel(name, dataset, config, horizons);
    bench::AddScoreRow(table, run, horizons.size());
    std::cerr << "[done] " << name << " ("
              << utils::FormatDouble(run.fit_seconds, 1) << "s fit)\n";
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape (paper): STGNNs beat classical models; "
               "adaptive-graph models beat predefined-graph models; "
               "SAGDFN matches or beats the best baselines on most "
               "metrics.\n";
  return 0;
}
